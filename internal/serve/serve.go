// Package serve is the HTTP layer of schemaevod: it exposes the full study
// pipeline as a versioned /v1 API backed by a bounded LRU cache of completed
// studies, a per-(seed, artifact) render memo, singleflight deduplication,
// and an optional persistent snapshot store — so any number of concurrent
// requests for one seed trigger exactly one pipeline run, and a restarted
// daemon serves previously-seen seeds without any run at all. The package
// also carries the daemon's observability surface (/v1/healthz, /v1/metrics)
// and the graceful-shutdown loop. Pure stdlib.
//
// # API versioning
//
// The canonical surface lives under /v1, a unified resource model with two
// resource collections — the built-in corpus seeds and user-ingested DDL
// histories — sharing one route shape:
//
//	POST /v1/histories                          ingest a DDL history upload
//	GET  /v1/{seeds|histories}                  list (?limit=&cursor= paginates)
//	GET  /v1/{seeds|histories}/{id}             one resource's summary
//	GET  /v1/{seeds|histories}/{id}/artifacts/{key}  one rendered artifact
//	GET  /v1/{seeds|histories}/{id}/events      SSE live stage progress
//	GET  /v1/seeds/{id}/figures/{name}          one SVG figure (seeds only)
//	GET  /v1/experiments                        experiment key list
//	GET  /v1/healthz                            readiness + cache digest + shard identity
//	GET  /v1/metrics                            Prometheus text exposition
//	GET  /v1/debug/trace                        instrumented pipeline run
//	GET  /v1/debug/stats                        latency/stage histogram join
//	GET  /v1/debug/events                       SSE firehose of all span events
//
// Errors on /v1 routes use a uniform JSON envelope {error, code, resource,
// id}; seed routes additionally keep the pre-redesign seed field. The
// original flat routes (/healthz, /metrics, /debug/trace,
// /v1/study/{seed}/...) remain as deprecated aliases: same behaviour and
// plain-text errors, plus a Deprecation header and a hit counter
// (schemaevod_legacy_requests_total).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/schemaevo/schemaevo/internal/ingest"
	"github.com/schemaevo/schemaevo/internal/obs"
	"github.com/schemaevo/schemaevo/internal/store"
	"github.com/schemaevo/schemaevo/internal/study"
)

// Options configures a Server. The zero value serves with sensible
// defaults: an 8-study cache, a 60-second request deadline, the real
// pipeline as runner, and no persistence.
type Options struct {
	// CacheSize bounds the number of seeds kept in memory — live studies and
	// store-restored snapshots alike (default 8; a full entry is a few MB).
	CacheSize int
	// Timeout is the per-request deadline. Requests that exceed it get 504,
	// but an underlying pipeline run keeps going and still fills the cache.
	Timeout time.Duration
	// Runner executes the pipeline for one seed (default: the real
	// pipeline, study.NewContext). The context carries the server's obs
	// tracer, so pipeline stages feed the schemaevo_stage_* metric families.
	// Tests substitute fakes; wrap a plain function with RunnerFunc.
	Runner Runner
	// Store persists completed studies as snapshots (nil = memory only).
	// It sits under the LRU as a read-through / write-behind tier: misses
	// consult it before running the pipeline, completed runs are snapshotted
	// asynchronously, and a restarted daemon serves every stored seed
	// without a single run.
	Store store.Store
	// GC bounds the persistent store's retention (snapshot count and age).
	// It is applied by RunStoreGC and by the periodic background sweep, and
	// only has effect when Store implements store.Lifecycler (the Disk
	// backend does).
	GC store.GCPolicy
	// GCInterval is the cadence of the background retention sweep started by
	// the serving loop; each tick is jittered by up to +10% so a fleet
	// sharing a store directory doesn't sweep in lockstep. 0 disables the
	// background sweep (RunStoreGC can still be called explicitly).
	GCInterval time.Duration
	// PrewarmWorkers bounds the parallel Prewarm worker pool
	// (default GOMAXPROCS/2, minimum 1).
	PrewarmWorkers int
	// PipelineWorkers bounds the per-study worker pool inside the default
	// pipeline Runner (0 = GOMAXPROCS). Deterministic: any value yields
	// byte-identical artifacts. Ignored when a custom Runner is supplied.
	PipelineWorkers int
	// EventBuffer bounds each SSE subscriber's event ring (the span event
	// stream behind /v1/seeds/{seed}/events and /v1/debug/events). A slow
	// consumer loses its oldest buffered events, never the publisher's time
	// (0 = obs.DefaultEventBuffer).
	EventBuffer int
	// HistoryStore persists ingested-history results, keyed by the 64-bit
	// truncation of the history's content address (nil = memory only). It
	// must be a separate namespace from Store — the daemon opens it under
	// <store-dir>/histories — because seed numbers and truncated hashes
	// share the int64 key space.
	HistoryStore store.Store
	// MaxUploadBytes bounds a POST /v1/histories request body; beyond it the
	// upload is rejected with 413 (default 8 MiB, negative = that default).
	MaxUploadBytes int64
	// TraceMaxSpans head-samples the collecting tracer behind /v1/debug/trace:
	// at most this many spans are retained per trace, keeping the response
	// bounded under deep proxy→backend span trees (0 = DefaultTraceMaxSpans;
	// negative = unlimited). Dropped spans count into
	// schemaevo_trace_dropped_spans_total.
	TraceMaxSpans int
	// Logger receives the daemon's structured log lines (nil = silent).
	// Pipeline runs log with the seed as correlation key.
	Logger *slog.Logger
}

// Server serves cached studies over HTTP. Create with New; the type is an
// http.Handler.
type Server struct {
	opts    Options
	cache   *resourceCache[*study.Study] // seed-keyed studies
	flight  *flightGroup                 // one pipeline run per seed
	loads   *flightGroup                 // one store restore per seed
	metrics *Metrics
	tracer  *obs.Tracer // metrics-only: feeds stage histograms, retains no spans
	bus     *obs.Bus    // live span events for the SSE endpoints
	mux     *http.ServeMux

	// The ingested-history namespace mirrors the seed machinery 1:1, keyed
	// by the 64-bit truncation of the history's content address: its own
	// LRU, ingest singleflight, restore singleflight, and id registry (the
	// truncated key → full hex identity map behind listings and snapshot
	// verification).
	histories    *resourceCache[*ingest.Result]
	ingestFlight *flightGroup
	historyLoads *flightGroup
	idMu         sync.Mutex
	historyIDs   map[int64]string

	persistMu      sync.Mutex
	persisting     map[int64]bool
	persistingHist map[int64]bool
	persistWG      sync.WaitGroup

	// render produces a study's complete artifact set for the write-behind.
	// It is renderAll in production; tests substitute a stub so persistence
	// mechanics can be exercised without paying for real renders.
	render func(ctx context.Context, st *study.Study) (map[string][]byte, error)
}

// deprecationDate is the RFC 9745 Deprecation value sent on legacy routes.
var deprecationDate = "@1767225600" // 2026-01-01T00:00:00Z

// New builds a Server from opts.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 60 * time.Second
	}
	if opts.Runner == nil {
		opts.Runner = pipelineRunner{workers: opts.PipelineWorkers}
	}
	if opts.TraceMaxSpans == 0 {
		opts.TraceMaxSpans = DefaultTraceMaxSpans
	} else if opts.TraceMaxSpans < 0 {
		opts.TraceMaxSpans = 0 // obs: 0 = unlimited
	}
	if opts.Logger == nil {
		opts.Logger = obs.NopLogger()
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = DefaultMaxUploadBytes
	}
	s := &Server{
		opts:           opts,
		metrics:        NewMetrics(),
		flight:         newFlightGroup(),
		loads:          newFlightGroup(),
		ingestFlight:   newFlightGroup(),
		historyLoads:   newFlightGroup(),
		historyIDs:     map[int64]string{},
		persisting:     map[int64]bool{},
		persistingHist: map[int64]bool{},
		render:         renderAll,
	}
	s.cache = newStudyCache(opts.CacheSize, s.metrics)
	s.histories = newHistoryCache(opts.CacheSize, s.metrics)
	s.bus = obs.NewBus()
	// The shared tracer covers render-time spans (experiment.<key>); its
	// events are unkeyed (seed 0) and reach only the firehose. Pipeline runs
	// get per-run tracers with the seed stamped on — see getStudy.
	s.tracer = obs.NewTracer(obs.Options{Stages: s.metrics.stages, Logger: opts.Logger, Bus: s.bus})

	mux := http.NewServeMux()
	// Canonical /v1 surface: two instances of the unified resource model,
	// sharing the JSON error envelope.
	mountResource(mux, resourceRoutes{
		plural:   "seeds",
		list:     s.handleSeeds,
		get:      s.handleSeedResource,
		artifact: s.handleArtifact(true),
		events:   s.handleSeedEvents,
	})
	mountResource(mux, resourceRoutes{
		plural:   "histories",
		create:   s.handleIngest,
		list:     s.handleHistories,
		get:      s.handleHistoryResource,
		artifact: s.handleHistoryArtifact,
		events:   s.handleHistoryEvents,
	})
	mux.HandleFunc("GET /v1/seeds/{id}/figures/{name}", s.handleFigure(true))
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	// Deprecated flat aliases: original behaviour, plain-text errors.
	mux.HandleFunc("GET /v1/study/{seed}/{key}", s.legacy("/v1/seeds/{seed}/artifacts/{key}", s.handleArtifact(false)))
	mux.HandleFunc("GET /v1/study/{seed}/figures/{name}", s.legacy("/v1/seeds/{seed}/figures/{name}", s.handleFigure(false)))
	mux.HandleFunc("GET /healthz", s.legacy("/v1/healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.legacy("/v1/metrics", s.handleMetrics))
	registerDebug(mux, s)
	s.mux = mux
	return s
}

// Metrics exposes the server's counters, mainly for tests and prewarm
// reporting.
func (s *Server) Metrics() *Metrics { return s.metrics }

// legacy wraps a deprecated flat route: hits are counted and the response
// advertises the successor under /v1 (RFC 9745 Deprecation header).
func (s *Server) legacy(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.legacyRequests.Add(1)
		w.Header().Set("Deprecation", deprecationDate)
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// statusRecorder captures the response code for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the SSE endpoints can stream
// through the recorder.
func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// ServeHTTP counts the request, tracks the in-flight gauge, and applies the
// per-request deadline before dispatching to the route table. The SSE event
// streams are exempt from the deadline: they live exactly as long as the
// watched run (seed streams) or the client's interest (the firehose).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	ctx := r.Context()
	if !isEventStreamPath(r.URL.Path) {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		defer cancel()
	}

	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r.WithContext(ctx))
	if rec.status >= 400 {
		s.metrics.errors.Add(1)
	}
}

// getStudy resolves one seed to a live study: cache hit, join of an
// in-flight run, or a fresh pipeline execution. The context only bounds this
// caller's wait — a pipeline run that loses its caller still completes,
// fills the cache, and schedules its snapshot save.
func (s *Server) getStudy(ctx context.Context, seed int64) (*study.Study, error) {
	if st, ok := s.cache.Get(seed); ok {
		s.metrics.cacheHits.Add(1)
		return st, nil
	}
	s.metrics.cacheMisses.Add(1)
	ch := s.flight.DoChan(seed, func() (any, error) {
		// Re-check under the flight: a run that completed between this
		// caller's cache miss and its flight creation has already filled the
		// cache, and must not trigger a second pipeline execution.
		if st, ok := s.cache.Get(seed); ok {
			return st, nil
		}
		s.metrics.pipelineRuns.Add(1)
		s.metrics.pipelineInflight.Add(1)
		defer s.metrics.pipelineInflight.Add(-1)
		// The run is deliberately detached from the request context: a caller
		// that times out must not cancel the pipeline, whose result still
		// fills the cache. A per-run tracer feeds the shared stage registry
		// like before and additionally stamps the seed on every live event,
		// so SSE watchers of this seed see the run's stages as they happen.
		runTracer := obs.NewTracer(obs.Options{
			Stages: s.metrics.stages, Logger: s.opts.Logger, Bus: s.bus, Seed: seed,
		})
		runCtx := obs.WithTracer(context.Background(), runTracer)
		runCtx = obs.WithLogger(runCtx, s.opts.Logger)
		st, err := s.opts.Runner.Run(runCtx, seed)
		if err != nil {
			return nil, err
		}
		s.cache.Put(seed, st)
		s.schedulePersist(seed, st)
		return st, nil
	})
	select {
	case <-ctx.Done():
		s.metrics.timeouts.Add(1)
		if s.flight.Inflight(seed) {
			// The waiter gives up but the run keeps going: an orphaned run.
			s.metrics.orphanedRuns.Add(1)
			s.opts.Logger.Warn("request abandoned in-flight pipeline run", "seed", seed)
		}
		return nil, ctx.Err()
	case res := <-ch:
		if res.Shared {
			s.metrics.flightJoins.Add(1)
		}
		if res.Err != nil {
			return nil, res.Err
		}
		return res.Val.(*study.Study), nil
	}
}

// ensureSeed makes a seed servable warm: already cached, restored from the
// store, or — as the last resort — computed by the pipeline.
func (s *Server) ensureSeed(ctx context.Context, seed int64) error {
	if s.cache.Has(seed) {
		return nil
	}
	s.restoreSnapshot(ctx, seed)
	if s.cache.Has(seed) {
		return nil
	}
	_, err := s.getStudy(ctx, seed)
	return err
}

// Prewarm makes the given seeds servable ahead of traffic using a bounded
// parallel worker pool (the study.MultiSeed semaphore pattern). Seeds
// present in the store are restored without a pipeline run; the rest run
// concurrently, deduplicated like any other lookup. Prewarm returns once
// every seed is warm and every snapshot save has reached the store.
func (s *Server) Prewarm(ctx context.Context, seeds []int64) error {
	workers := s.opts.PrewarmWorkers
	if workers <= 0 {
		workers = maxInt(1, runtime.GOMAXPROCS(0)/2)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			if err := s.ensureSeed(ctx, seed); err != nil {
				errs[i] = fmt.Errorf("serve: prewarm seed %d: %w", seed, err)
				return
			}
			s.opts.Logger.Info("prewarmed", "seed", seed,
				"took", time.Since(start).Round(time.Millisecond))
		}(i, seed)
	}
	wg.Wait()
	s.SyncStore() // prewarmed seeds are durable once Prewarm returns
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// parseSeed reads the seed from the path: {id} on the unified resource
// routes, {seed} on the legacy aliases.
func parseSeed(r *http.Request) (int64, error) {
	raw := r.PathValue("id")
	if raw == "" {
		raw = r.PathValue("seed")
	}
	seed, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("seed must be an integer, got %q", raw)
	}
	return seed, nil
}

// respondError writes one error either as the /v1 JSON envelope or in the
// legacy plain-text form, depending on the route generation. A non-zero
// seed stamps the resource-model fields alongside the legacy seed field.
func respondError(w http.ResponseWriter, jsonErr bool, code int, msg string, seed int64) {
	if !jsonErr {
		http.Error(w, msg, code)
		return
	}
	env := errEnvelope{Error: msg, Code: code, Seed: seed}
	if seed != 0 {
		env.Resource = "seed"
		env.ID = strconv.FormatInt(seed, 10)
	}
	writeEnvelope(w, env)
}

// failErr maps a resolution error to the right status for either route
// generation.
func failErr(w http.ResponseWriter, jsonErr bool, seed int64, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		respondError(w, jsonErr, http.StatusGatewayTimeout,
			"study run exceeded the request deadline; retry — the run continues and will be cached", seed)
	case errors.Is(err, context.Canceled):
		respondError(w, jsonErr, 499, "request canceled", seed) // nginx-style client-closed-request
	default:
		respondError(w, jsonErr, http.StatusInternalServerError, err.Error(), seed)
	}
}

// handleArtifact serves one whole-study artifact — the three exports or any
// experiment key — on both route generations.
func (s *Server) handleArtifact(jsonErr bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !knownArtifact(key) {
			respondError(w, jsonErr, http.StatusNotFound,
				fmt.Sprintf("unknown artifact %q; experiment keys are listed at /v1/experiments", key), 0)
			return
		}
		seed, err := parseSeed(r)
		if err != nil {
			respondError(w, jsonErr, http.StatusBadRequest, err.Error(), 0)
			return
		}
		start := time.Now()
		if streamableArtifact(key) {
			s.serveStreamedArtifact(r.Context(), w, jsonErr, seed, key)
			s.metrics.ObserveLatency(key, time.Since(start))
			return
		}
		b, err := s.artifactBytes(r.Context(), seed, key)
		if err != nil {
			failErr(w, jsonErr, seed, err)
			return
		}
		w.Header().Set("Content-Type", contentTypeFor(key))
		w.Write(b)
		s.metrics.ObserveLatency(key, time.Since(start))
	}
}

// handleFigure serves one SVG figure on both route generations.
func (s *Server) handleFigure(jsonErr bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !strings.HasSuffix(name, ".svg") {
			respondError(w, jsonErr, http.StatusNotFound, "figure names end in .svg", 0)
			return
		}
		seed, err := parseSeed(r)
		if err != nil {
			respondError(w, jsonErr, http.StatusBadRequest, err.Error(), 0)
			return
		}
		start := time.Now()
		svg, ok, err := s.figureBytes(r.Context(), seed, name)
		if err != nil {
			failErr(w, jsonErr, seed, err)
			return
		}
		if !ok {
			respondError(w, jsonErr, http.StatusNotFound, fmt.Sprintf("unknown figure %q", name), seed)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		w.Write(svg)
		s.metrics.ObserveLatency("figures", time.Since(start))
	}
}

// handleExperiments lists the experiment keys the artifact endpoint accepts.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(study.ExperimentKeys())
}

// handleSeeds reports which seeds are warm (cached, most recent first) and
// which are durable in the store. With ?limit= or ?cursor= the response
// switches to one paginated ascending list of known seeds (cached ∪ stored)
// plus a next_cursor.
func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	pr, err := parsePage(r)
	if err != nil {
		respondError(w, true, http.StatusBadRequest, err.Error(), 0)
		return
	}
	var stored []int64
	if s.opts.Store != nil {
		stored, _ = s.opts.Store.List(r.Context())
	}
	w.Header().Set("Content-Type", "application/json")
	if !pr.paged {
		resp := map[string]any{"cached": s.cache.Seeds()}
		if s.opts.Store != nil {
			resp["stored"] = stored
		}
		json.NewEncoder(w).Encode(resp)
		return
	}
	known := map[int64]bool{}
	for _, seed := range s.cache.Seeds() {
		known[seed] = true
	}
	for _, seed := range stored {
		known[seed] = true
	}
	all := make([]int64, 0, len(known))
	for seed := range known {
		all = append(all, seed)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	page, next := pageSeeds(all, pr)
	json.NewEncoder(w).Encode(map[string]any{"seeds": page, "next_cursor": next})
}

// handleSeedResource describes one seed in the unified resource model:
// identity, warmth, durability.
func (s *Server) handleSeedResource(w http.ResponseWriter, r *http.Request) {
	seed, err := parseSeed(r)
	if err != nil {
		respondError(w, true, http.StatusBadRequest, err.Error(), 0)
		return
	}
	stored := false
	if s.opts.Store != nil {
		if seeds, err := s.opts.Store.List(r.Context()); err == nil {
			for _, st := range seeds {
				if st == seed {
					stored = true
					break
				}
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"resource": "seed",
		"id":       strconv.FormatInt(seed, 10),
		"seed":     seed,
		"cached":   s.cache.Has(seed),
		"stored":   stored,
	})
}

// handleHealth reports readiness plus a cache digest and the shard-identity
// fields (snapshot_count, store_path, pipeline_workers) the proxy's
// aggregation uses to tell backends apart without scraping /v1/metrics.
// During graceful drain it turns 503 so load balancers stop sending new work.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	code := http.StatusOK
	if s.metrics.shuttingDown.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	workers := s.opts.PipelineWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	body := map[string]any{
		"status":           status,
		"cached_seeds":     s.cache.Seeds(),
		"cached_histories": s.histories.Len(),
		"inflight":         s.metrics.inflight.Load(),
		"snapshot_count":   0,
		"store_path":       "",
		"pipeline_workers": workers,
	}
	if s.opts.Store != nil {
		if stored, err := s.opts.Store.List(r.Context()); err == nil {
			body["stored_seeds"] = len(stored)
			body["snapshot_count"] = len(stored)
		}
		if d, ok := s.opts.Store.(interface{ Dir() string }); ok {
			body["store_path"] = d.Dir()
		}
	}
	if s.opts.HistoryStore != nil {
		if stored, err := s.opts.HistoryStore.List(r.Context()); err == nil {
			body["stored_histories"] = len(stored)
		}
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w)
}

// ListenAndServe runs srv on addr until ctx is canceled (SIGINT/SIGTERM in
// the daemon), then drains in-flight requests for up to drain before
// forcing connections closed. logger receives progress lines (nil = silent).
func ListenAndServe(ctx context.Context, addr string, srv *Server, drain time.Duration, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	return serveListener(ctx, ln, srv, drain, logger)
}

// serveListener is ListenAndServe on an established listener — the seam
// tests use to get an ephemeral port.
func serveListener(ctx context.Context, ln net.Listener, srv *Server, drain time.Duration, logger *slog.Logger) error {
	if logger == nil {
		logger = obs.NopLogger()
	}
	srv.StartGC(ctx) // periodic retention sweep, if configured
	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("schemaevod listening",
			"addr", ln.Addr().String(), "cache", srv.opts.CacheSize, "timeout", srv.opts.Timeout)
		errCh <- hs.Serve(ln)
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	srv.metrics.shuttingDown.Store(true)
	logger.Info("shutdown signal received", "drain", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	// Let in-flight snapshot saves land — even after a forced drain: the
	// next daemon generation starts warm from whatever this one finished
	// computing, and abandoning a save wastes the render it already paid for.
	srv.SyncStore()
	if err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}

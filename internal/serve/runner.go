package serve

import (
	"context"

	"github.com/schemaevo/schemaevo/internal/study"
)

// Runner executes the study pipeline for one seed. It is the composition
// seam of the serving layer: the cache read-through, singleflight
// deduplication and the persistence write-behind all decorate a Runner, and
// tests substitute fakes the same way.
type Runner interface {
	Run(ctx context.Context, seed int64) (*study.Study, error)
}

// RunnerFunc adapts a plain function to the Runner interface — the
// compatibility shim for the original func-typed Options.Runner field.
type RunnerFunc func(ctx context.Context, seed int64) (*study.Study, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, seed int64) (*study.Study, error) {
	return f(ctx, seed)
}

// pipelineRunner is the production Runner: the real study pipeline,
// fanned out over the configured worker pool (0 = GOMAXPROCS). Worker
// count never changes the artifacts, only the wall clock.
type pipelineRunner struct {
	workers int
}

func (r pipelineRunner) Run(ctx context.Context, seed int64) (*study.Study, error) {
	return study.NewWithOptions(ctx, seed, study.Options{Workers: r.workers})
}

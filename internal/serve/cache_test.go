package serve

import (
	"sync"
	"testing"

	"github.com/schemaevo/schemaevo/internal/study"
)

// stub studies only need distinct identities; no pipeline data is touched
// by the cache itself.
func stubStudy(seed int64) *study.Study { return &study.Study{Seed: seed} }

func TestCacheLRUEviction(t *testing.T) {
	m := NewMetrics()
	c := newStudyCache(2, m)
	c.Put(1, stubStudy(1))
	c.Put(2, stubStudy(2))
	if _, ok := c.Get(1); !ok { // refresh 1 → 2 becomes LRU
		t.Fatal("seed 1 missing")
	}
	c.Put(3, stubStudy(3))
	if _, ok := c.Get(2); ok {
		t.Fatal("seed 2 should have been evicted (LRU)")
	}
	for _, seed := range []int64{1, 3} {
		if st, ok := c.Get(seed); !ok || st.Seed != seed {
			t.Fatalf("seed %d missing or wrong: %+v", seed, st)
		}
	}
	if got := m.Snapshot().CacheEvictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheSeedsOrder(t *testing.T) {
	c := newStudyCache(4, nil)
	for _, s := range []int64{5, 6, 7} {
		c.Put(s, stubStudy(s))
	}
	c.Get(5) // most recent now
	seeds := c.Seeds()
	if len(seeds) != 3 || seeds[0] != 5 {
		t.Fatalf("seeds = %v, want [5 7 6]", seeds)
	}
}

func TestCachePutRefreshKeepsSize(t *testing.T) {
	c := newStudyCache(2, nil)
	c.Put(1, stubStudy(1))
	c.Put(1, stubStudy(1))
	if c.Len() != 1 {
		t.Fatalf("len = %d after duplicate put", c.Len())
	}
}

func TestCacheCapacityClamped(t *testing.T) {
	c := newStudyCache(0, nil)
	c.Put(1, stubStudy(1))
	c.Put(2, stubStudy(2))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want clamp to 1", c.Len())
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; the race
// detector is the assertion.
func TestCacheConcurrent(t *testing.T) {
	c := newStudyCache(4, NewMetrics())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seed := int64((g + i) % 8)
				if _, ok := c.Get(seed); !ok {
					c.Put(seed, stubStudy(seed))
				}
				c.Seeds()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("cache overflowed its bound: %d", c.Len())
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/schemaevo/schemaevo/internal/ingest"
	"github.com/schemaevo/schemaevo/internal/store"
)

// historyUpload renders a small JSON DDL history whose final column set
// depends on n, so different n values yield different content addresses.
func historyUpload(n int) []byte {
	versions := []string{
		`CREATE TABLE t (a INT, b INT);`,
		`CREATE TABLE t (a INT, b INT, c INT);`,
		fmt.Sprintf(`CREATE TABLE t (a INT, c INT, extra%d INT);`, n),
	}
	doc := map[string]any{"project": "uptest", "versions": []map[string]string{}}
	vs := doc["versions"].([]map[string]string)
	for _, sql := range versions {
		vs = append(vs, map[string]string{"sql": sql})
	}
	doc["versions"] = vs
	b, _ := json.Marshal(doc)
	return b
}

func postHistory(t *testing.T, ts *httptest.Server, body []byte, contentType string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/histories", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/histories: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read ingest response: %v", err)
	}
	return resp.StatusCode, string(b)
}

type ingestReply struct {
	Resource      string          `json:"resource"`
	ID            string          `json:"id"`
	Created       bool            `json:"created"`
	Artifacts     []string        `json:"artifacts"`
	Profile       json.RawMessage `json:"profile"`
	Compatibility json.RawMessage `json:"compatibility"`
}

func TestIngestEndpoint(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := historyUpload(0)

	code, raw := postHistory(t, ts, body, "application/json")
	if code != http.StatusCreated {
		t.Fatalf("first POST: status %d: %s", code, raw)
	}
	var first ingestReply
	if err := json.Unmarshal([]byte(raw), &first); err != nil {
		t.Fatalf("bad ingest response: %v", err)
	}
	if first.Resource != "history" || !first.Created || !ingest.ValidID(first.ID) {
		t.Fatalf("response = %+v", first)
	}
	if len(first.Artifacts) != 4 {
		t.Errorf("artifacts %v", first.Artifacts)
	}
	var prof struct {
		Taxon         string `json:"taxon_short"`
		Compatibility string `json:"compatibility"`
		Versions      int    `json:"versions"`
	}
	if err := json.Unmarshal(first.Profile, &prof); err != nil {
		t.Fatalf("embedded profile: %v", err)
	}
	if prof.Versions != 3 || prof.Taxon == "" || prof.Compatibility == "" {
		t.Errorf("profile = %+v", prof)
	}

	t.Run("re-upload deduplicates", func(t *testing.T) {
		code, raw := postHistory(t, ts, body, "application/json")
		if code != http.StatusOK {
			t.Fatalf("re-POST: status %d: %s", code, raw)
		}
		var second ingestReply
		if err := json.Unmarshal([]byte(raw), &second); err != nil {
			t.Fatal(err)
		}
		if second.Created {
			t.Error("re-upload claims created=true")
		}
		if second.ID != first.ID {
			t.Errorf("re-upload id %s != %s", second.ID, first.ID)
		}
		if !bytes.Equal(second.Profile, first.Profile) {
			t.Error("re-upload profile differs")
		}
		m := srv.Metrics().Snapshot()
		if m.IngestAccepted != 2 || m.IngestDedupHits != 1 {
			t.Errorf("accepted=%d dedup=%d, want 2/1", m.IngestAccepted, m.IngestDedupHits)
		}
	})

	t.Run("artifacts serve and match", func(t *testing.T) {
		code, got, hdr := get(t, ts, "/v1/histories/"+first.ID+"/artifacts/profile.json")
		if code != http.StatusOK {
			t.Fatalf("profile artifact: %d: %s", code, got)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type %q", ct)
		}
		// The POST response embeds the profile compacted (encoding/json
		// compacts RawMessage); the artifact is the indented original. They
		// must agree on content.
		var artCompact bytes.Buffer
		if err := json.Compact(&artCompact, []byte(got)); err != nil {
			t.Fatal(err)
		}
		if artCompact.String() != string(first.Profile) {
			t.Error("artifact differs from the POST-embedded profile")
		}
		code, csv, hdr := get(t, ts, "/v1/histories/"+first.ID+"/artifacts/heartbeat.csv")
		if code != http.StatusOK || !strings.HasPrefix(csv, "transition,when,") {
			t.Errorf("heartbeat: %d %.60s", code, csv)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("heartbeat content type %q", ct)
		}
	})

	t.Run("resource descriptor", func(t *testing.T) {
		code, raw, _ := get(t, ts, "/v1/histories/"+first.ID)
		if code != http.StatusOK {
			t.Fatalf("descriptor: %d: %s", code, raw)
		}
		var desc struct {
			Resource string `json:"resource"`
			ID       string `json:"id"`
			Cached   bool   `json:"cached"`
			Dialect  string `json:"dialect"`
		}
		if err := json.Unmarshal([]byte(raw), &desc); err != nil {
			t.Fatal(err)
		}
		if desc.Resource != "history" || desc.ID != first.ID || !desc.Cached {
			t.Errorf("descriptor = %+v", desc)
		}
		if desc.Dialect != "mysql" {
			t.Errorf("descriptor dialect = %q, want mysql (auto-detected at ingest)", desc.Dialect)
		}
	})

	t.Run("listing includes the history", func(t *testing.T) {
		code, raw, _ := get(t, ts, "/v1/histories")
		if code != http.StatusOK {
			t.Fatalf("list: %d", code)
		}
		var list struct {
			Cached []string `json:"cached"`
		}
		if err := json.Unmarshal([]byte(raw), &list); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range list.Cached {
			found = found || id == first.ID
		}
		if !found {
			t.Errorf("cached listing %v misses %s", list.Cached, first.ID)
		}
	})

	t.Run("settled events stream ends with result", func(t *testing.T) {
		code, raw, hdr := get(t, ts, "/v1/histories/"+first.ID+"/events")
		if code != http.StatusOK {
			t.Fatalf("events: %d: %s", code, raw)
		}
		if ct := hdr.Get("Content-Type"); ct != "text/event-stream" {
			t.Errorf("content type %q", ct)
		}
		if !strings.Contains(raw, "event: result") || !strings.Contains(raw, `"history":"`+first.ID+`"`) {
			t.Errorf("stream: %.200s", raw)
		}
	})

	t.Run("error envelopes", func(t *testing.T) {
		unknown := strings.Repeat("ab", 32)
		code, raw, _ := get(t, ts, "/v1/histories/"+unknown+"/artifacts/profile.json")
		if code != http.StatusNotFound {
			t.Fatalf("unknown history: %d", code)
		}
		var env struct {
			Error    string `json:"error"`
			Code     int    `json:"code"`
			Resource string `json:"resource"`
			ID       string `json:"id"`
		}
		if err := json.Unmarshal([]byte(raw), &env); err != nil {
			t.Fatal(err)
		}
		if env.Resource != "history" || env.ID != unknown || env.Code != http.StatusNotFound {
			t.Errorf("envelope = %+v", env)
		}
		if code, _, _ := get(t, ts, "/v1/histories/not-hex/artifacts/profile.json"); code != http.StatusBadRequest {
			t.Errorf("malformed id: %d, want 400", code)
		}
		if code, _, _ := get(t, ts, "/v1/histories/"+first.ID+"/artifacts/nope"); code != http.StatusNotFound {
			t.Errorf("unknown artifact: %d, want 404", code)
		}
		if code, _, _ := get(t, ts, "/v1/histories/"+unknown+"/events"); code != http.StatusNotFound {
			t.Errorf("events for unknown history: %d, want 404", code)
		}
	})
}

func TestIngestConcurrentUploadsDedup(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := historyUpload(7)

	const n = 8
	codes := make([]int, n)
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/histories", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("POST %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var rep ingestReply
			if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
				t.Errorf("POST %d: decode: %v", i, err)
				return
			}
			codes[i] = resp.StatusCode
			ids[i] = rep.ID
		}(i)
	}
	wg.Wait()

	created := 0
	for i := range codes {
		if codes[i] == http.StatusCreated {
			created++
		}
		if ids[i] != ids[0] {
			t.Errorf("upload %d got id %s, want %s", i, ids[i], ids[0])
		}
	}
	if created != 1 {
		t.Errorf("%d uploads answered 201, want exactly 1", created)
	}
	m := srv.Metrics().Snapshot()
	if m.IngestAccepted != n || m.IngestDedupHits != n-1 {
		t.Errorf("accepted=%d dedup=%d, want %d/%d", m.IngestAccepted, m.IngestDedupHits, n, n-1)
	}
}

func TestIngestRequestHardening(t *testing.T) {
	srv := New(Options{MaxUploadBytes: 256})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	t.Run("oversized upload gets 413", func(t *testing.T) {
		big := bytes.Repeat([]byte("x"), 512)
		code, raw := postHistory(t, ts, big, "application/json")
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d: %s", code, raw)
		}
		if !strings.Contains(raw, "256-byte limit") || !strings.Contains(raw, `"resource":"history"`) {
			t.Errorf("envelope: %s", raw)
		}
	})

	t.Run("unsupported media type gets 415", func(t *testing.T) {
		code, raw := postHistory(t, ts, []byte("CREATE TABLE t (a INT);"), "application/pdf")
		if code != http.StatusUnsupportedMediaType {
			t.Fatalf("status %d: %s", code, raw)
		}
		if !strings.Contains(raw, "application/sql") {
			t.Errorf("415 body should list supported media types: %s", raw)
		}
	})

	t.Run("undecodable body gets 400", func(t *testing.T) {
		code, _ := postHistory(t, ts, []byte("{not json"), "application/json")
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})

	t.Run("no usable versions gets 422", func(t *testing.T) {
		code, raw := postHistory(t, ts, []byte("-- comments only\n"), "application/sql")
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("status %d: %s", code, raw)
		}
	})

	m := srv.Metrics().Snapshot()
	if m.IngestRejected != 3 {
		t.Errorf("rejected=%d, want 3 (413 + 415 + 400; the 422 was accepted then failed)", m.IngestRejected)
	}
}

func TestIngestRoundTripAcrossRestart(t *testing.T) {
	hist := store.NewMem()
	srv := New(Options{HistoryStore: hist})
	ts := httptest.NewServer(srv)
	body := historyUpload(42)

	code, raw := postHistory(t, ts, body, "application/json")
	if code != http.StatusCreated {
		t.Fatalf("POST: %d: %s", code, raw)
	}
	var rep ingestReply
	if err := json.Unmarshal([]byte(raw), &rep); err != nil {
		t.Fatal(err)
	}
	srv.SyncStore()
	wantArts := map[string]string{}
	for _, key := range ingest.ArtifactKeys() {
		code, b, _ := get(t, ts, "/v1/histories/"+rep.ID+"/artifacts/"+key)
		if code != http.StatusOK {
			t.Fatalf("artifact %s: %d", key, code)
		}
		wantArts[key] = b
	}
	ts.Close()

	// "Restart": a fresh server on the same history store, no upload body.
	srv2 := New(Options{HistoryStore: hist})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	t.Run("stored listing survives", func(t *testing.T) {
		code, raw, _ := get(t, ts2, "/v1/histories")
		if code != http.StatusOK {
			t.Fatalf("list: %d", code)
		}
		var list struct {
			Stored []string `json:"stored"`
		}
		if err := json.Unmarshal([]byte(raw), &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Stored) != 1 || list.Stored[0] != rep.ID {
			t.Errorf("stored = %v, want [%s]", list.Stored, rep.ID)
		}
	})

	t.Run("artifacts byte-identical after restore", func(t *testing.T) {
		for _, key := range ingest.ArtifactKeys() {
			code, b, _ := get(t, ts2, "/v1/histories/"+rep.ID+"/artifacts/"+key)
			if code != http.StatusOK {
				t.Fatalf("artifact %s after restart: %d", key, code)
			}
			if b != wantArts[key] {
				t.Errorf("artifact %s differs across restart", key)
			}
		}
		m := srv2.Metrics().Snapshot()
		if m.StoreHits == 0 {
			t.Error("restore did not hit the history store")
		}
	})

	t.Run("re-upload after restart deduplicates", func(t *testing.T) {
		code, raw := postHistory(t, ts2, body, "application/json")
		if code != http.StatusOK {
			t.Fatalf("re-POST after restart: %d: %s", code, raw)
		}
		var again ingestReply
		if err := json.Unmarshal([]byte(raw), &again); err != nil {
			t.Fatal(err)
		}
		if again.Created || again.ID != rep.ID {
			t.Errorf("restart re-upload: created=%v id=%s", again.Created, again.ID)
		}
		if m := srv2.Metrics().Snapshot(); m.IngestDedupHits == 0 {
			t.Error("restart re-upload did not count as a dedup hit")
		}
	})
}

func TestHistoryPagination(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ids := map[string]bool{}
	for i := 0; i < 5; i++ {
		code, raw := postHistory(t, ts, historyUpload(100+i), "application/json")
		if code != http.StatusCreated {
			t.Fatalf("POST %d: %d: %s", i, code, raw)
		}
		var rep ingestReply
		if err := json.Unmarshal([]byte(raw), &rep); err != nil {
			t.Fatal(err)
		}
		ids[rep.ID] = true
	}

	var got []string
	cursor := ""
	pages := 0
	for {
		path := "/v1/histories?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		code, raw, _ := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("page %d: %d: %s", pages, code, raw)
		}
		var page struct {
			Histories  []string `json:"histories"`
			NextCursor string   `json:"next_cursor"`
		}
		if err := json.Unmarshal([]byte(raw), &page); err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Histories...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		if pages > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(got) != len(ids) {
		t.Fatalf("paginated walk returned %d ids, want %d", len(got), len(ids))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("page walk out of order at %d: %s >= %s", i, got[i-1], got[i])
		}
	}
	for _, id := range got {
		if !ids[id] {
			t.Errorf("walk returned unknown id %s", id)
		}
	}

	t.Run("cursor is stable across inserts", func(t *testing.T) {
		code, raw, _ := get(t, ts, "/v1/histories?limit=2")
		if code != http.StatusOK {
			t.Fatal(code)
		}
		var page1 struct {
			Histories  []string `json:"histories"`
			NextCursor string   `json:"next_cursor"`
		}
		if err := json.Unmarshal([]byte(raw), &page1); err != nil {
			t.Fatal(err)
		}
		// A new history lands between page fetches; the cursor must still
		// resume strictly after page 1's last item.
		if code, _ := postHistory(t, ts, historyUpload(999), "application/json"); code != http.StatusCreated {
			t.Fatal("insert between pages failed")
		}
		code, raw, _ = get(t, ts, "/v1/histories?limit=2&cursor="+page1.NextCursor)
		if code != http.StatusOK {
			t.Fatal(code)
		}
		var page2 struct {
			Histories []string `json:"histories"`
		}
		if err := json.Unmarshal([]byte(raw), &page2); err != nil {
			t.Fatal(err)
		}
		if len(page2.Histories) == 0 || page2.Histories[0] <= page1.Histories[len(page1.Histories)-1] {
			t.Errorf("cursor resume broken: page1 %v, page2 %v", page1.Histories, page2.Histories)
		}
	})

	t.Run("malformed parameters get 400", func(t *testing.T) {
		if code, _, _ := get(t, ts, "/v1/histories?limit=0"); code != http.StatusBadRequest {
			t.Errorf("limit=0: %d", code)
		}
		if code, _, _ := get(t, ts, "/v1/histories?cursor=!!!"); code != http.StatusBadRequest {
			t.Errorf("bad cursor: %d", code)
		}
	})
}

func TestSeedsPagination(t *testing.T) {
	srv := New(Options{Runner: RunnerFunc(realRunner(t))})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for seed := 1; seed <= 3; seed++ {
		if code, _, _ := get(t, ts, fmt.Sprintf("/v1/seeds/%d/artifacts/funnel", seed)); code != http.StatusOK {
			t.Fatalf("warm seed %d failed: %d", seed, code)
		}
	}

	code, raw, _ := get(t, ts, "/v1/seeds?limit=2")
	if code != http.StatusOK {
		t.Fatalf("page 1: %d: %s", code, raw)
	}
	var page1 struct {
		Seeds      []int64 `json:"seeds"`
		NextCursor string  `json:"next_cursor"`
	}
	if err := json.Unmarshal([]byte(raw), &page1); err != nil {
		t.Fatal(err)
	}
	if len(page1.Seeds) != 2 || page1.Seeds[0] != 1 || page1.Seeds[1] != 2 || page1.NextCursor == "" {
		t.Fatalf("page 1 = %+v", page1)
	}
	code, raw, _ = get(t, ts, "/v1/seeds?limit=2&cursor="+page1.NextCursor)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var page2 struct {
		Seeds      []int64 `json:"seeds"`
		NextCursor string  `json:"next_cursor"`
	}
	if err := json.Unmarshal([]byte(raw), &page2); err != nil {
		t.Fatal(err)
	}
	if len(page2.Seeds) != 1 || page2.Seeds[0] != 3 || page2.NextCursor != "" {
		t.Fatalf("page 2 = %+v", page2)
	}

	// Unpaginated keeps the pre-redesign shape.
	code, raw, _ = get(t, ts, "/v1/seeds")
	if code != http.StatusOK || !strings.Contains(raw, `"cached"`) {
		t.Errorf("unpaged /v1/seeds: %d %.80s", code, raw)
	}
}

// BenchmarkIngestWarm measures the deduplicated re-upload path: decode +
// content-address + memo hit, no pipeline run.
func BenchmarkIngestWarm(b *testing.B) {
	srv := New(Options{})
	body := historyUpload(0)
	up, err := ingest.Prepare("application/json", body)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := srv.runIngest(context.Background(), up); err != nil {
		b.Fatal(err)
	}
	rr := httptest.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/histories", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr.Body.Reset()
		srv.ServeHTTP(rr, req)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/schemaevo/schemaevo/internal/collect"
	"github.com/schemaevo/schemaevo/internal/store"
	"github.com/schemaevo/schemaevo/internal/study"
)

// stubPersistServer builds a server whose runner and render seam are cheap
// stubs, so persistence mechanics can be exercised without real pipeline
// runs. The stub study carries an empty funnel so its Summary marshals —
// persistence needs the summary blob even with the render stubbed out.
// runs counts pipeline executions.
func stubPersistServer(st store.Store, cacheSize int, runs *atomic.Int64) *Server {
	srv := New(Options{
		Store:     st,
		CacheSize: cacheSize,
		Runner: RunnerFunc(func(_ context.Context, seed int64) (*study.Study, error) {
			runs.Add(1)
			return &study.Study{Seed: seed, Funnel: &collect.Funnel{}}, nil
		}),
	})
	srv.render = func(_ context.Context, st *study.Study) (map[string][]byte, error) {
		return map[string][]byte{"export.csv": []byte("stub,csv\n")}, nil
	}
	return srv
}

// TestPersistMarkClears is the regression test for the write-behind's
// in-flight mark: after a save lands, the seed must be persistable again.
// Before the fix, schedulePersist never cleared persisting[seed] on success,
// so a snapshot deleted from the store (retention GC, scrub, operator) could
// never be re-persisted within one daemon generation.
func TestPersistMarkClears(t *testing.T) {
	m := store.NewMem()
	ctx := context.Background()
	var runs atomic.Int64
	srv := stubPersistServer(m, 1, &runs)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, _, _ := get(t, ts, "/v1/seeds/1/artifacts/export.csv"); code != 200 {
		t.Fatalf("status %d", code)
	}
	srv.SyncStore()
	if s := srv.Metrics().Snapshot(); s.StoreSaves != 1 {
		t.Fatalf("store_saves = %d, want 1", s.StoreSaves)
	}

	// The snapshot disappears (a GC eviction or scrub delete) and the cache
	// entry is evicted by a different seed filling the 1-slot LRU.
	if err := m.Delete(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := get(t, ts, "/v1/seeds/2/artifacts/export.csv"); code != 200 {
		t.Fatal("evicting request failed")
	}
	srv.SyncStore()

	// The next run of seed 1 must persist again — the stale mark would
	// silently drop this save.
	if code, _, _ := get(t, ts, "/v1/seeds/1/artifacts/export.csv"); code != 200 {
		t.Fatal("re-run request failed")
	}
	srv.SyncStore()
	if s := srv.Metrics().Snapshot(); s.StoreSaves != 3 {
		t.Errorf("store_saves = %d, want 3 — persisting mark not cleared after success", s.StoreSaves)
	}
	seeds, _ := m.List(ctx)
	if len(seeds) != 2 {
		t.Errorf("stored seeds = %v, want seed 1 re-persisted alongside 2", seeds)
	}
	if n := runs.Load(); n != 3 {
		t.Errorf("pipeline runs = %d, want 3", n)
	}
}

// TestScrubEndpoint: /v1/debug/scrub runs one integrity pass on a disk
// store, reports its accounting as JSON, and deletes what failed; backends
// without a lifecycle surface answer 501.
func TestScrubEndpoint(t *testing.T) {
	t.Run("disk", func(t *testing.T) {
		dir := t.TempDir()
		d, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := d.Put(ctx, 1, fakeSnapshot(1)); err != nil {
			t.Fatal(err)
		}
		// Flip one byte of one blob, length preserved.
		objects := filepath.Join(dir, "objects")
		des, err := os.ReadDir(objects)
		if err != nil || len(des) == 0 {
			t.Fatalf("no objects: %v", err)
		}
		path := filepath.Join(objects, des[0].Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}

		var runs atomic.Int64
		srv := New(Options{Store: d, Runner: refusingRunner(t, &runs)})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		code, body, hdr := get(t, ts, "/v1/debug/scrub")
		if code != 200 {
			t.Fatalf("status %d: %s", code, body)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type %q", ct)
		}
		var res store.ScrubResult
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Fatalf("not a ScrubResult: %v: %s", err, body)
		}
		if res.Snapshots != 1 || res.Damaged != 1 || res.Removed != 1 {
			t.Errorf("scrub = %+v, want 1 snapshot, 1 damaged, 1 removed", res)
		}
		if _, err := d.Get(ctx, 1); !errors.Is(err, store.ErrNotFound) {
			t.Errorf("damaged snapshot survived the endpoint scrub: %v", err)
		}
		s := srv.Metrics().Snapshot()
		if s.ScrubRuns != 1 || s.ScrubDamaged != 1 || s.ScrubBlobs == 0 {
			t.Errorf("scrub metrics = runs %d, damaged %d, blobs %d", s.ScrubRuns, s.ScrubDamaged, s.ScrubBlobs)
		}
		if _, mbody, _ := get(t, ts, "/v1/metrics"); !strings.Contains(mbody, "schemaevo_store_scrub_damaged_total 1") {
			t.Error("metrics exposition missing schemaevo_store_scrub_damaged_total")
		}
	})

	t.Run("no lifecycle surface", func(t *testing.T) {
		for name, st := range map[string]store.Store{"mem": store.NewMem(), "none": nil} {
			var runs atomic.Int64
			srv := New(Options{Store: st, Runner: refusingRunner(t, &runs)})
			ts := httptest.NewServer(srv)
			code, body, _ := get(t, ts, "/v1/debug/scrub")
			ts.Close()
			if code != 501 {
				t.Errorf("%s store: status %d, want 501: %s", name, code, body)
			}
			var env struct {
				Code int `json:"code"`
			}
			if err := json.Unmarshal([]byte(body), &env); err != nil || env.Code != 501 {
				t.Errorf("%s store: error envelope: %v (%s)", name, err, body)
			}
		}
	})
}

// TestRunStoreGC: the serve-level sweep applies the configured policy and
// feeds the schemaevo_store_gc_* counters; without a lifecycle surface it
// reports ErrNoLifecycle.
func TestRunStoreGC(t *testing.T) {
	dir := t.TempDir()
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		snap := fakeSnapshot(seed)
		snap.SavedAt = time.Date(2026, 8, 1, int(seed), 0, 0, 0, time.UTC)
		if err := d.Put(ctx, seed, snap); err != nil {
			t.Fatal(err)
		}
	}
	var runs atomic.Int64
	srv := New(Options{Store: d, Runner: refusingRunner(t, &runs), GC: store.GCPolicy{MaxSnapshots: 1}})
	res, err := srv.RunStoreGC(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 2 || res.Remaining != 1 {
		t.Errorf("GC = %+v, want 2 evicted, 1 remaining", res)
	}
	if seeds, _ := d.List(ctx); len(seeds) != 1 || seeds[0] != 3 {
		t.Errorf("List = %v, want only the newest seed", seeds)
	}
	s := srv.Metrics().Snapshot()
	if s.GCRuns != 1 || s.GCEvicted != 2 {
		t.Errorf("gc metrics = runs %d, evicted %d; want 1 and 2", s.GCRuns, s.GCEvicted)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, body, _ := get(t, ts, "/v1/metrics"); !strings.Contains(body, "schemaevo_store_gc_evicted_snapshots_total 2") {
		t.Error("metrics exposition missing schemaevo_store_gc_evicted_snapshots_total")
	}

	if _, err := New(Options{Store: store.NewMem()}).RunStoreGC(ctx); !errors.Is(err, ErrNoLifecycle) {
		t.Errorf("mem-store GC err = %v, want ErrNoLifecycle", err)
	}
}

// TestStartGC: the background loop starts only when a bound, an interval,
// and a lifecycle-capable store are all present — and once running, it
// converges the store onto the policy without any explicit call.
func TestStartGC(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, srv := range map[string]*Server{
		"no policy":    New(Options{Store: d, GCInterval: time.Minute}),
		"no interval":  New(Options{Store: d, GC: store.GCPolicy{MaxSnapshots: 1}}),
		"no lifecycle": New(Options{Store: store.NewMem(), GC: store.GCPolicy{MaxSnapshots: 1}, GCInterval: time.Minute}),
	} {
		if srv.StartGC(ctx) {
			t.Errorf("StartGC with %s must not start a loop", name)
		}
	}

	for seed := int64(1); seed <= 3; seed++ {
		snap := fakeSnapshot(seed)
		snap.SavedAt = time.Date(2026, 8, 1, int(seed), 0, 0, 0, time.UTC)
		if err := d.Put(ctx, seed, snap); err != nil {
			t.Fatal(err)
		}
	}
	loopCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	srv := New(Options{Store: d, GC: store.GCPolicy{MaxSnapshots: 1}, GCInterval: 10 * time.Millisecond})
	if !srv.StartGC(loopCtx) {
		t.Fatal("StartGC did not start despite policy, interval and disk store")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if seeds, _ := d.List(ctx); len(seeds) == 1 {
			break
		}
		if time.Now().After(deadline) {
			seeds, _ := d.List(ctx)
			t.Fatalf("background sweep never converged: %d snapshots remain", len(seeds))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.Metrics().Snapshot().GCRuns; n == 0 {
		t.Error("background sweep ran but counted nothing")
	}
}

// TestSelfHealingRestart composes the three bugfixes into the lifecycle
// contract: a store damaged at rest degrades to one cold run on the next
// generation, the write-behind re-persists (the cleared mark allows the
// save, the checksum-verified dedup actually rewrites the bad bytes), and
// the generation after that restores cleanly.
func TestSelfHealingRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Generation A computes seed 1 and persists it.
	dA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runsA atomic.Int64
	srvA := stubPersistServer(dA, 8, &runsA)
	tsA := httptest.NewServer(srvA)
	if code, _, _ := get(t, tsA, "/v1/seeds/1/artifacts/export.csv"); code != 200 {
		t.Fatal("generation A request failed")
	}
	srvA.SyncStore()
	tsA.Close()

	// Bit rot: every blob flips a byte, length preserved — the damage the
	// old size-only dedup could never repair.
	objects := filepath.Join(dir, "objects")
	des, err := os.ReadDir(objects)
	if err != nil || len(des) == 0 {
		t.Fatalf("no objects persisted: %v", err)
	}
	for _, de := range des {
		path := filepath.Join(objects, de.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Generation B: restore fails, degrades to exactly one cold run, and the
	// write-behind replaces the damaged snapshot.
	dB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runsB atomic.Int64
	srvB := stubPersistServer(dB, 8, &runsB)
	tsB := httptest.NewServer(srvB)
	if code, _, _ := get(t, tsB, "/v1/seeds/1/artifacts/export.csv"); code != 200 {
		t.Fatal("generation B must degrade to a cold run, not fail")
	}
	srvB.SyncStore()
	tsB.Close()
	if n := runsB.Load(); n != 1 {
		t.Errorf("generation B pipeline runs = %d, want 1", n)
	}
	sB := srvB.Metrics().Snapshot()
	if sB.StoreCorrupt != 1 || sB.StoreSaves != 1 {
		t.Errorf("generation B metrics: corrupt %d, saves %d; want 1 and 1", sB.StoreCorrupt, sB.StoreSaves)
	}

	// Generation C: a fresh handle reads the healed snapshot cleanly.
	dC, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := dC.Get(ctx, 1)
	if err != nil {
		t.Fatalf("store did not self-heal: %v", err)
	}
	if string(snap.Artifacts["export.csv"]) != "stub,csv\n" {
		t.Errorf("healed artifact = %q", snap.Artifacts["export.csv"])
	}
}

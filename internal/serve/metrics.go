package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
)

// Metrics is the daemon's observability surface: request and cache counters,
// an in-flight gauge, and per-experiment latency histograms. Everything is
// stdlib (atomics + one mutex for the histogram map) and renders in the
// Prometheus text exposition format so stock scrapers can read /metrics.
// The exposition also merges the obs stage registry, so per-stage pipeline
// histograms (schemaevo_stage_*) appear alongside the daemon counters.
type Metrics struct {
	requests         atomic.Int64 // all HTTP requests handled
	errors           atomic.Int64 // responses with status >= 400
	inflight         atomic.Int64 // requests currently being handled
	cacheHits        atomic.Int64 // study lookups answered from the LRU
	cacheMisses      atomic.Int64 // study lookups that had to run or join a flight
	cacheEvicts      atomic.Int64 // studies evicted by the LRU bound
	cacheEntries     atomic.Int64 // studies currently cached
	pipelineRuns     atomic.Int64 // cold pipeline executions
	pipelineInflight atomic.Int64 // pipeline runs currently executing (incl. orphaned)
	orphanedRuns     atomic.Int64 // runs whose waiter timed out while they kept going
	flightJoins      atomic.Int64 // requests deduplicated onto an in-flight run
	timeouts         atomic.Int64 // requests that hit the per-request deadline
	storeHits        atomic.Int64 // seeds restored from a persisted snapshot
	storeMisses      atomic.Int64 // store lookups that found no snapshot
	storeCorrupt     atomic.Int64 // snapshots rejected as corrupt (degraded to cold run)
	storeSaves       atomic.Int64 // write-behind snapshot saves that reached the store
	memoHits         atomic.Int64 // artifacts served from the per-(seed, key) render memo
	legacyRequests   atomic.Int64 // hits on deprecated pre-/v1 routes
	gcRuns           atomic.Int64 // store retention sweeps completed
	gcEvicted        atomic.Int64 // snapshots evicted by the retention policy
	gcOrphanBlobs    atomic.Int64 // unreferenced blobs collected by GC
	gcTmpFiles       atomic.Int64 // stray temp files collected by GC
	scrubRuns        atomic.Int64 // integrity scrubs completed
	scrubBlobs       atomic.Int64 // blobs checked by the scrubber
	scrubDamaged     atomic.Int64 // snapshots the scrubber found damaged (and removed)
	ingestAccepted   atomic.Int64 // history uploads that decoded and content-addressed cleanly
	ingestRejected   atomic.Int64 // history uploads refused (size, media type, malformed body)
	ingestDedup      atomic.Int64 // accepted uploads answered without a fresh ingest run (memo, store, or flight join)
	eventSubscribers atomic.Int64 // live SSE event streams currently attached
	eventsSent       atomic.Int64 // SSE stage events written to clients
	eventsDropped    atomic.Int64 // events lost to full subscriber rings (slow consumers)
	shuttingDown     atomic.Bool  // health turns not-ready during graceful drain
	mu               sync.Mutex
	latencyByExp     map[string]*histogram
	stages           *obs.StageRegistry
}

// NewMetrics returns a metrics registry wired to the process-wide stage
// registry.
func NewMetrics() *Metrics {
	return newMetricsWithStages(obs.Stages())
}

// newMetricsWithStages injects a private stage registry — the seam tests use
// to assert on stage families without cross-test interference.
func newMetricsWithStages(stages *obs.StageRegistry) *Metrics {
	return &Metrics{latencyByExp: map[string]*histogram{}, stages: stages}
}

// latencyBuckets are the histogram upper bounds in seconds: cache hits land
// in the microsecond buckets, cold pipeline runs in the multi-second ones.
var latencyBuckets = [numBuckets]float64{
	.000025, .0001, .0005, .001, .005, .025, .1, .5, 1, 2.5, 5, 10, 30,
}

const numBuckets = 13

// histogram is a fixed-bucket cumulative histogram. It additionally tracks
// the maximum observation, which caps quantile estimates at the histogram's
// open-ended edge.
type histogram struct {
	counts [numBuckets + 1]atomic.Int64 // +1 for +Inf
	sum    atomic.Int64                 // nanoseconds
	total  atomic.Int64
	maxNS  atomic.Int64 // largest single observation, nanoseconds
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], secs)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
	for {
		cur := h.maxNS.Load()
		if int64(d) <= cur || h.maxNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// quantile estimates the q-th latency quantile (0 < q < 1) by linear
// interpolation inside the histogram's buckets. The estimate is clamped to
// the maximum observation, so a rank landing in the open-ended +Inf bucket
// (or interpolating past the data) reports the largest value actually seen
// rather than a bucket bound.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	max := time.Duration(h.maxNS.Load()).Seconds()
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i, ub := range latencyBuckets {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			v := lower + (rank-float64(cum))/float64(c)*(ub-lower)
			if v > max {
				v = max
			}
			return v
		}
		cum += c
		lower = ub
	}
	// The rank lives in the +Inf bucket: every bucketed answer would be a
	// fabricated bound, so report the max observed instead.
	return max
}

// ObserveLatency records one served artifact's latency under its experiment
// (or artifact) label.
func (m *Metrics) ObserveLatency(experiment string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.latencyByExp[experiment]
	if !ok {
		h = &histogram{}
		m.latencyByExp[experiment] = h
	}
	m.mu.Unlock()
	h.observe(d)
}

// Snapshot is a consistent read of the counter state, used by tests and the
// health endpoint.
type Snapshot struct {
	Requests, Errors, Inflight              int64
	CacheHits, CacheMisses, CacheEvictions  int64
	CacheEntries, PipelineRuns, FlightJoins int64
	PipelineInflight, OrphanedRuns          int64
	Timeouts                                int64
	StoreHits, StoreMisses, StoreCorrupt    int64
	StoreSaves, MemoHits, LegacyRequests    int64
	GCRuns, GCEvicted, GCOrphanBlobs        int64
	GCTmpFiles                              int64
	ScrubRuns, ScrubBlobs, ScrubDamaged     int64
	IngestAccepted, IngestRejected          int64
	IngestDedupHits                         int64
	EventSubscribers, EventsSent            int64
	EventsDropped                           int64
}

// Snapshot reads every counter.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Requests:         m.requests.Load(),
		Errors:           m.errors.Load(),
		Inflight:         m.inflight.Load(),
		CacheHits:        m.cacheHits.Load(),
		CacheMisses:      m.cacheMisses.Load(),
		CacheEvictions:   m.cacheEvicts.Load(),
		CacheEntries:     m.cacheEntries.Load(),
		PipelineRuns:     m.pipelineRuns.Load(),
		PipelineInflight: m.pipelineInflight.Load(),
		OrphanedRuns:     m.orphanedRuns.Load(),
		FlightJoins:      m.flightJoins.Load(),
		Timeouts:         m.timeouts.Load(),
		StoreHits:        m.storeHits.Load(),
		StoreMisses:      m.storeMisses.Load(),
		StoreCorrupt:     m.storeCorrupt.Load(),
		StoreSaves:       m.storeSaves.Load(),
		MemoHits:         m.memoHits.Load(),
		LegacyRequests:   m.legacyRequests.Load(),
		GCRuns:           m.gcRuns.Load(),
		GCEvicted:        m.gcEvicted.Load(),
		GCOrphanBlobs:    m.gcOrphanBlobs.Load(),
		GCTmpFiles:       m.gcTmpFiles.Load(),
		ScrubRuns:        m.scrubRuns.Load(),
		ScrubBlobs:       m.scrubBlobs.Load(),
		ScrubDamaged:     m.scrubDamaged.Load(),
		IngestAccepted:   m.ingestAccepted.Load(),
		IngestRejected:   m.ingestRejected.Load(),
		IngestDedupHits:  m.ingestDedup.Load(),
		EventSubscribers: m.eventSubscribers.Load(),
		EventsSent:       m.eventsSent.Load(),
		EventsDropped:    m.eventsDropped.Load(),
	}
}

// StatEntry is one row of the /v1/debug/stats join: the accumulated count,
// total and mean of either a request-latency histogram (experiments) or a
// pipeline-stage duration histogram (stages). Latency entries carry bucket-
// interpolated p50/p99 estimates.
type StatEntry struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	AvgSeconds float64 `json:"avg_seconds"`
	P50Seconds float64 `json:"p50_seconds,omitempty"`
	P99Seconds float64 `json:"p99_seconds,omitempty"`
}

// StatsDocument is the /v1/debug/stats payload: per-experiment request
// latency joined with per-stage pipeline durations in one document, so
// "where does a cold request spend its time" needs no metric scraping.
type StatsDocument struct {
	// Experiments maps artifact/experiment keys to their serve-side request
	// latency (what the client waited for).
	Experiments map[string]StatEntry `json:"experiments"`
	// Stages maps obs span names to pipeline-side stage durations (where
	// that wait went).
	Stages map[string]StatEntry `json:"stages"`
}

// StatsDocument builds the latency/stage join from the live registries.
func (m *Metrics) StatsDocument() StatsDocument {
	doc := StatsDocument{
		Experiments: map[string]StatEntry{},
		Stages:      map[string]StatEntry{},
	}
	m.mu.Lock()
	hists := make(map[string]*histogram, len(m.latencyByExp))
	for k, h := range m.latencyByExp {
		hists[k] = h
	}
	m.mu.Unlock()
	for key, h := range hists {
		total := h.total.Load()
		if total == 0 {
			continue
		}
		sum := time.Duration(h.sum.Load()).Seconds()
		doc.Experiments[key] = StatEntry{
			Count:      total,
			SumSeconds: sum,
			AvgSeconds: sum / float64(total),
			P50Seconds: h.quantile(0.50),
			P99Seconds: h.quantile(0.99),
		}
	}
	if m.stages != nil {
		for _, st := range m.stages.Snapshot() {
			if st.Count == 0 {
				continue
			}
			doc.Stages[st.Name] = StatEntry{
				Count:      st.Count,
				SumSeconds: st.Sum.Seconds(),
				AvgSeconds: st.Avg().Seconds(),
			}
		}
	}
	return doc
}

// WriteTo renders the Prometheus text exposition.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	s := m.Snapshot()
	var n int64
	count := func(name, help string, v int64) error {
		written, err := fmt.Fprintf(w, "# HELP %[1]s %[2]s\n# TYPE %[1]s counter\n%[1]s %[3]d\n", name, help, v)
		n += int64(written)
		return err
	}
	gauge := func(name, help string, v int64) error {
		written, err := fmt.Fprintf(w, "# HELP %[1]s %[2]s\n# TYPE %[1]s gauge\n%[1]s %[3]d\n", name, help, v)
		n += int64(written)
		return err
	}
	for _, e := range []error{
		count("schemaevod_requests_total", "HTTP requests handled.", s.Requests),
		count("schemaevod_request_errors_total", "Responses with status >= 400.", s.Errors),
		gauge("schemaevod_inflight_requests", "Requests currently being handled.", s.Inflight),
		count("schemaevod_cache_hits_total", "Study lookups served from the LRU cache.", s.CacheHits),
		count("schemaevod_cache_misses_total", "Study lookups that missed the cache.", s.CacheMisses),
		count("schemaevod_cache_evictions_total", "Studies evicted by the cache bound.", s.CacheEvictions),
		gauge("schemaevod_cache_entries", "Studies currently cached.", s.CacheEntries),
		count("schemaevod_pipeline_runs_total", "Cold study pipeline executions.", s.PipelineRuns),
		gauge("schemaevod_pipeline_inflight", "Pipeline runs currently executing, including runs whose requester is gone.", s.PipelineInflight),
		count("schemaevod_orphaned_runs_total", "Pipeline runs abandoned by a timed-out request but still running to completion.", s.OrphanedRuns),
		count("schemaevod_flight_joins_total", "Requests deduplicated onto an in-flight pipeline run.", s.FlightJoins),
		count("schemaevod_request_timeouts_total", "Requests that exceeded the per-request deadline.", s.Timeouts),
		count("schemaevod_store_hits_total", "Seeds restored from a persisted snapshot without a pipeline run.", s.StoreHits),
		count("schemaevod_store_misses_total", "Store lookups that found no snapshot.", s.StoreMisses),
		count("schemaevod_store_corrupt_total", "Snapshots rejected as corrupt and degraded to a cold pipeline run.", s.StoreCorrupt),
		count("schemaevod_store_saves_total", "Write-behind snapshot saves that reached the store.", s.StoreSaves),
		count("schemaevod_artifact_memo_hits_total", "Artifacts served from the per-seed render memo.", s.MemoHits),
		count("schemaevod_legacy_requests_total", "Hits on deprecated pre-/v1 routes.", s.LegacyRequests),
		count("schemaevo_store_gc_runs_total", "Store retention/orphan sweeps completed.", s.GCRuns),
		count("schemaevo_store_gc_evicted_snapshots_total", "Snapshots evicted by the retention policy.", s.GCEvicted),
		count("schemaevo_store_gc_orphan_blobs_total", "Unreferenced blobs collected by the GC sweep.", s.GCOrphanBlobs),
		count("schemaevo_store_gc_tmp_files_total", "Stray temp files collected by the GC sweep.", s.GCTmpFiles),
		count("schemaevo_store_scrub_runs_total", "Store integrity scrubs completed.", s.ScrubRuns),
		count("schemaevo_store_scrub_blobs_checked_total", "Blobs size/checksum-verified by the scrubber.", s.ScrubBlobs),
		count("schemaevo_store_scrub_damaged_total", "Snapshots the scrubber found damaged and removed.", s.ScrubDamaged),
		count("schemaevo_trace_dropped_spans_total", "Spans discarded by trace head sampling, process-wide.", obs.DroppedSpansTotal()),
		count("schemaevod_ingest_accepted_total", "History uploads that decoded and content-addressed cleanly.", s.IngestAccepted),
		count("schemaevod_ingest_rejected_total", "History uploads refused for size, media type or malformed body.", s.IngestRejected),
		count("schemaevod_ingest_dedup_hits_total", "Accepted uploads answered without a fresh ingest run (memo, store or flight join).", s.IngestDedupHits),
		gauge("schemaevod_event_subscribers", "Live SSE span-event streams currently attached.", s.EventSubscribers),
		count("schemaevod_events_sent_total", "SSE stage events written to clients.", s.EventsSent),
		count("schemaevod_events_dropped_total", "Span events lost to full subscriber rings (slow consumers).", s.EventsDropped),
	} {
		if e != nil {
			return n, e
		}
	}

	m.mu.Lock()
	exps := make([]string, 0, len(m.latencyByExp))
	for k := range m.latencyByExp {
		exps = append(exps, k)
	}
	sort.Strings(exps)
	hists := make([]*histogram, len(exps))
	for i, k := range exps {
		hists[i] = m.latencyByExp[k]
	}
	m.mu.Unlock()

	if len(exps) > 0 {
		written, err := fmt.Fprintf(w, "# HELP schemaevod_experiment_latency_seconds Artifact render latency per experiment.\n# TYPE schemaevod_experiment_latency_seconds histogram\n")
		n += int64(written)
		if err != nil {
			return n, err
		}
	}
	for i, exp := range exps {
		h := hists[i]
		var cum int64
		for bi, ub := range latencyBuckets {
			cum += h.counts[bi].Load()
			written, err := fmt.Fprintf(w, "schemaevod_experiment_latency_seconds_bucket{experiment=%q,le=%q} %d\n",
				exp, fmt.Sprintf("%g", ub), cum)
			n += int64(written)
			if err != nil {
				return n, err
			}
		}
		cum += h.counts[len(latencyBuckets)].Load()
		written, err := fmt.Fprintf(w, "schemaevod_experiment_latency_seconds_bucket{experiment=%q,le=\"+Inf\"} %d\nschemaevod_experiment_latency_seconds_sum{experiment=%q} %g\nschemaevod_experiment_latency_seconds_count{experiment=%q} %d\n",
			exp, cum, exp, time.Duration(h.sum.Load()).Seconds(), exp, h.total.Load())
		n += int64(written)
		if err != nil {
			return n, err
		}
	}

	// Merge the pipeline's per-stage histograms (schemaevo_stage_*): corpus
	// synthesis, funnel, per-project analysis, experiment rendering.
	if m.stages != nil {
		written, err := m.stages.WritePrometheus(w)
		n += written
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

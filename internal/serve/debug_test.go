package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
	"github.com/schemaevo/schemaevo/internal/study"
)

// TestDebugTrace: the endpoint runs one instrumented pipeline execution and
// responds with Chrome trace JSON whose events carry the stage names the
// runner opened; the result also fills the cache (instrumented prewarm).
func TestDebugTrace(t *testing.T) {
	runner := func(ctx context.Context, seed int64) (*study.Study, error) {
		ctx, span := obs.Start(ctx, "study.new", obs.Int("seed", seed))
		_, inner := obs.Start(ctx, "corpus.generate")
		inner.End()
		span.End()
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Runner: RunnerFunc(runner)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body, hdr := get(t, ts, "/debug/trace?seed=5")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("response is not valid trace JSON: %v\n%s", err, body)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	if !names["study.new"] || !names["corpus.generate"] {
		t.Fatalf("trace missing stage spans, got %v", names)
	}
	if _, ok := srv.cache.Get(5); !ok {
		t.Error("/debug/trace must fill the cache for its seed")
	}
	s := srv.Metrics().Snapshot()
	if s.PipelineRuns != 1 || s.PipelineInflight != 0 {
		t.Errorf("runs = %d inflight = %d, want 1 and 0", s.PipelineRuns, s.PipelineInflight)
	}
}

func TestDebugTraceBadSeed(t *testing.T) {
	srv := New(Options{Runner: RunnerFunc(func(_ context.Context, seed int64) (*study.Study, error) {
		return &study.Study{Seed: seed}, nil
	})})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if code, body, _ := get(t, ts, "/debug/trace?seed=banana"); code != 400 {
		t.Fatalf("status %d: %s", code, body)
	}
}

// TestPprofMounted: the server runs its own mux, so the stdlib profiles must
// be wired explicitly — the index page is the canary.
func TestPprofMounted(t *testing.T) {
	srv := New(Options{Runner: RunnerFunc(func(_ context.Context, seed int64) (*study.Study, error) {
		return &study.Study{Seed: seed}, nil
	})})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	code, body, _ := get(t, ts, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d: %.120s", code, body)
	}
}

// TestServerStageMetrics: a pipeline run through the normal study path must
// populate the schemaevo_stage_* families in /metrics via the server's
// shared metrics-only tracer.
func TestServerStageMetrics(t *testing.T) {
	runner := func(ctx context.Context, seed int64) (*study.Study, error) {
		_, span := obs.Start(ctx, "history.analyze")
		time.Sleep(time.Millisecond)
		span.End()
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Runner: RunnerFunc(runner)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body, _ := get(t, ts, "/v1/study/3/export.csv"); code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	_, body, _ := get(t, ts, "/metrics")
	for _, want := range []string{
		"# TYPE schemaevo_stage_duration_seconds histogram",
		`schemaevo_stage_duration_seconds_count{stage="history.analyze"} 1`,
		`schemaevo_stage_runs_total{stage="history.analyze"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestOrphanedRunMetrics: a request that times out while its flight keeps
// executing must count one orphaned run, and the inflight gauge must return
// to zero once the run completes.
func TestOrphanedRunMetrics(t *testing.T) {
	release := make(chan struct{})
	runner := func(_ context.Context, seed int64) (*study.Study, error) {
		<-release
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Timeout: 20 * time.Millisecond, Runner: RunnerFunc(runner)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body, _ := get(t, ts, "/v1/study/7/export.csv"); code != 504 {
		t.Fatalf("status %d: %s", code, body)
	}
	s := srv.Metrics().Snapshot()
	if s.OrphanedRuns != 1 {
		t.Errorf("orphaned runs = %d, want 1", s.OrphanedRuns)
	}
	if s.PipelineInflight != 1 {
		t.Errorf("inflight = %d while run is stuck, want 1", s.PipelineInflight)
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().Snapshot().PipelineInflight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline inflight gauge never returned to zero")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCacheEntriesNeverNegative: concurrent inserts with constant eviction
// must keep the entries gauge consistent — never below zero, and equal to
// the real cache length once the dust settles.
func TestCacheEntriesNeverNegative(t *testing.T) {
	m := newMetricsWithStages(obs.NewStageRegistry())
	c := newStudyCache(2, m)
	stop := make(chan struct{})
	var negatives sync.Map
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := m.Snapshot().CacheEntries; n < 0 {
				negatives.Store(n, true)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Put(int64((g*500+i)%16), stubStudy(int64(i)))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()

	negatives.Range(func(k, _ any) bool {
		t.Errorf("cacheEntries went negative: %v", k)
		return true
	})
	if got, want := m.Snapshot().CacheEntries, int64(c.Len()); got != want {
		t.Errorf("cacheEntries = %d, cache len = %d", got, want)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
	"github.com/schemaevo/schemaevo/internal/store"
	"github.com/schemaevo/schemaevo/internal/study"
)

// TestDebugTrace: the endpoint runs one instrumented pipeline execution and
// responds with Chrome trace JSON whose events carry the stage names the
// runner opened; the result also fills the cache (instrumented prewarm).
func TestDebugTrace(t *testing.T) {
	runner := func(ctx context.Context, seed int64) (*study.Study, error) {
		ctx, span := obs.Start(ctx, "study.new", obs.Int("seed", seed))
		_, inner := obs.Start(ctx, "corpus.generate")
		inner.End()
		span.End()
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Runner: RunnerFunc(runner)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body, hdr := get(t, ts, "/debug/trace?seed=5")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("response is not valid trace JSON: %v\n%s", err, body)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	if !names["study.new"] || !names["corpus.generate"] {
		t.Fatalf("trace missing stage spans, got %v", names)
	}
	if _, ok := srv.cache.Get(5); !ok {
		t.Error("/debug/trace must fill the cache for its seed")
	}
	s := srv.Metrics().Snapshot()
	if s.PipelineRuns != 1 || s.PipelineInflight != 0 {
		t.Errorf("runs = %d inflight = %d, want 1 and 0", s.PipelineRuns, s.PipelineInflight)
	}
}

func TestDebugTraceBadSeed(t *testing.T) {
	srv := New(Options{Runner: RunnerFunc(func(_ context.Context, seed int64) (*study.Study, error) {
		return &study.Study{Seed: seed}, nil
	})})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if code, body, _ := get(t, ts, "/debug/trace?seed=banana"); code != 400 {
		t.Fatalf("status %d: %s", code, body)
	}
}

// TestPprofMounted: the server runs its own mux, so the stdlib profiles must
// be wired explicitly — the index page is the canary.
func TestPprofMounted(t *testing.T) {
	srv := New(Options{Runner: RunnerFunc(func(_ context.Context, seed int64) (*study.Study, error) {
		return &study.Study{Seed: seed}, nil
	})})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	code, body, _ := get(t, ts, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d: %.120s", code, body)
	}
}

// TestServerStageMetrics: a pipeline run through the normal study path must
// populate the schemaevo_stage_* families in /metrics via the server's
// shared metrics-only tracer.
func TestServerStageMetrics(t *testing.T) {
	runner := func(ctx context.Context, seed int64) (*study.Study, error) {
		_, span := obs.Start(ctx, "history.analyze")
		time.Sleep(time.Millisecond)
		span.End()
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Runner: RunnerFunc(runner)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body, _ := get(t, ts, "/v1/study/3/export.csv"); code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	_, body, _ := get(t, ts, "/metrics")
	for _, want := range []string{
		"# TYPE schemaevo_stage_duration_seconds histogram",
		`schemaevo_stage_duration_seconds_count{stage="history.analyze"} 1`,
		`schemaevo_stage_runs_total{stage="history.analyze"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestOrphanedRunMetrics: a request that times out while its flight keeps
// executing must count one orphaned run, and the inflight gauge must return
// to zero once the run completes.
func TestOrphanedRunMetrics(t *testing.T) {
	release := make(chan struct{})
	runner := func(_ context.Context, seed int64) (*study.Study, error) {
		<-release
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Timeout: 20 * time.Millisecond, Runner: RunnerFunc(runner)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body, _ := get(t, ts, "/v1/study/7/export.csv"); code != 504 {
		t.Fatalf("status %d: %s", code, body)
	}
	s := srv.Metrics().Snapshot()
	if s.OrphanedRuns != 1 {
		t.Errorf("orphaned runs = %d, want 1", s.OrphanedRuns)
	}
	if s.PipelineInflight != 1 {
		t.Errorf("inflight = %d while run is stuck, want 1", s.PipelineInflight)
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().Snapshot().PipelineInflight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline inflight gauge never returned to zero")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCacheEntriesNeverNegative: concurrent inserts with constant eviction
// must keep the entries gauge consistent — never below zero, and equal to
// the real cache length once the dust settles.
func TestCacheEntriesNeverNegative(t *testing.T) {
	m := newMetricsWithStages(obs.NewStageRegistry())
	c := newStudyCache(2, m)
	stop := make(chan struct{})
	var negatives sync.Map
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := m.Snapshot().CacheEntries; n < 0 {
				negatives.Store(n, true)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Put(int64((g*500+i)%16), stubStudy(int64(i)))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()

	negatives.Range(func(k, _ any) bool {
		t.Errorf("cacheEntries went negative: %v", k)
		return true
	})
	if got, want := m.Snapshot().CacheEntries, int64(c.Len()); got != want {
		t.Errorf("cacheEntries = %d, cache len = %d", got, want)
	}
}

// TestDebugStats: /v1/debug/stats joins the per-experiment request-latency
// histograms with the per-stage pipeline durations in one JSON document.
func TestDebugStats(t *testing.T) {
	runner := func(ctx context.Context, seed int64) (*study.Study, error) {
		_, span := obs.Start(ctx, "corpus.generate")
		time.Sleep(time.Millisecond)
		span.End()
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Runner: RunnerFunc(runner)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if code, body, _ := get(t, ts, "/v1/seeds/2/artifacts/export.csv"); code != 200 {
			t.Fatalf("warmup status %d: %s", code, body)
		}
	}
	code, body, hdr := get(t, ts, "/v1/debug/stats")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var doc StatsDocument
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	exp, ok := doc.Experiments["export.csv"]
	if !ok {
		t.Fatalf("experiments missing export.csv: %+v", doc.Experiments)
	}
	if exp.Count != 3 || exp.SumSeconds <= 0 || exp.AvgSeconds <= 0 {
		t.Errorf("export.csv entry = %+v", exp)
	}
	if exp.P50Seconds <= 0 || exp.P99Seconds < exp.P50Seconds {
		t.Errorf("quantiles inverted or zero: %+v", exp)
	}
	st, ok := doc.Stages["corpus.generate"]
	if !ok {
		t.Fatalf("stages missing corpus.generate: %+v", doc.Stages)
	}
	// The stage registry is process-wide, so other tests in the package may
	// have observed this stage too — assert presence, not an exact count.
	if st.Count < 1 || st.AvgSeconds <= 0 {
		t.Errorf("corpus.generate entry = %+v", st)
	}
}

// TestDebugTraceHeadSampling: with a small TraceMaxSpans the trace response
// retains only the head of the span stream and the dropped counter surfaces
// in /v1/metrics.
func TestDebugTraceHeadSampling(t *testing.T) {
	runner := func(ctx context.Context, seed int64) (*study.Study, error) {
		for i := 0; i < 10; i++ {
			_, span := obs.Start(ctx, "study.fanout")
			span.End()
		}
		return &study.Study{Seed: seed}, nil
	}
	srv := New(Options{Runner: RunnerFunc(runner), TraceMaxSpans: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/debug/trace?seed=2")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(trace.TraceEvents) != 4 {
		t.Errorf("trace retained %d events, want 4 (head-sampled)", len(trace.TraceEvents))
	}
	_, metrics, _ := get(t, ts, "/v1/metrics")
	if !strings.Contains(metrics, "schemaevo_trace_dropped_spans_total") {
		t.Error("metrics exposition missing schemaevo_trace_dropped_spans_total")
	}
}

// TestHealthShardIdentity: /v1/healthz carries the fields the proxy's
// shard-aware aggregation keys on — snapshot_count, store_path,
// pipeline_workers — alongside the original readiness digest.
func TestHealthShardIdentity(t *testing.T) {
	dir := t.TempDir()
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(context.Background(), 4, fakeSnapshot(4)); err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: d, PipelineWorkers: 3, Runner: RunnerFunc(func(_ context.Context, seed int64) (*study.Study, error) {
		return &study.Study{Seed: seed}, nil
	})})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body, _ := get(t, ts, "/v1/healthz")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var h struct {
		Status          string `json:"status"`
		SnapshotCount   int    `json:"snapshot_count"`
		StorePath       string `json:"store_path"`
		PipelineWorkers int    `json:"pipeline_workers"`
		StoredSeeds     int    `json:"stored_seeds"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.SnapshotCount != 1 || h.StoredSeeds != 1 {
		t.Errorf("healthz = %+v", h)
	}
	if h.StorePath != d.Dir() {
		t.Errorf("store_path = %q, want %q", h.StorePath, d.Dir())
	}
	if h.PipelineWorkers != 3 {
		t.Errorf("pipeline_workers = %d, want 3", h.PipelineWorkers)
	}

	// Without a store the identity fields are present but zero-valued, and
	// workers resolve to GOMAXPROCS.
	srv2 := New(Options{Runner: RunnerFunc(func(_ context.Context, seed int64) (*study.Study, error) {
		return &study.Study{Seed: seed}, nil
	})})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	_, body2, _ := get(t, ts2, "/v1/healthz")
	var h2 struct {
		SnapshotCount   int    `json:"snapshot_count"`
		StorePath       string `json:"store_path"`
		PipelineWorkers int    `json:"pipeline_workers"`
	}
	if err := json.Unmarshal([]byte(body2), &h2); err != nil {
		t.Fatal(err)
	}
	if h2.SnapshotCount != 0 || h2.StorePath != "" || h2.PipelineWorkers < 1 {
		t.Errorf("storeless healthz identity = %+v", h2)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/schemaevo/schemaevo/internal/ingest"
	"github.com/schemaevo/schemaevo/internal/obs"
	"github.com/schemaevo/schemaevo/internal/store"
)

// This file is the ingested-history side of the unified resource model:
// POST /v1/histories accepts a user-supplied DDL history, runs the
// parse→diff→heartbeat→classify pipeline on it (ingest.Run), and serves the
// resulting profile/compatibility artifacts through the same
// cache → singleflight → store machinery the seed namespace uses. The
// content address (hex SHA-256 of the normalized history) is the public
// identity; its 64-bit truncation keys the LRU, the flights, the snapshot
// store and the event bus, so re-uploads and concurrent uploads of one
// logical history collapse onto one run — the dedup the
// schemaevod_ingest_dedup_hits_total counter observes.

// DefaultMaxUploadBytes is the POST /v1/histories body bound when
// Options.MaxUploadBytes is zero.
const DefaultMaxUploadBytes int64 = 8 << 20

// registerHistoryID records the truncated-key → full-identity mapping. The
// registry is what listings and snapshot verification translate through; it
// grows by one small entry per distinct history seen this process and is
// never a correctness requirement (a missing id only hides the entry from
// the cached listing).
func (s *Server) registerHistoryID(key int64, id string) {
	s.idMu.Lock()
	s.historyIDs[key] = id
	s.idMu.Unlock()
}

// historyID translates a truncated key back to its full identity.
func (s *Server) historyID(key int64) (string, bool) {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	id, ok := s.historyIDs[key]
	return id, ok
}

// ingestResponse is the POST /v1/histories body: the resource identity plus
// the two headline artifacts embedded verbatim, so a single upload
// round-trip returns the profile, taxon and per-version compatibility
// without follow-up artifact GETs.
type ingestResponse struct {
	Resource      string          `json:"resource"`
	ID            string          `json:"id"`
	Created       bool            `json:"created"` // false = deduplicated
	Artifacts     []string        `json:"artifacts"`
	Profile       json.RawMessage `json:"profile"`
	Compatibility json.RawMessage `json:"compatibility"`
}

// handleIngest is POST /v1/histories: bound the body, decode and
// content-address the upload, then run — or dedup onto — the ingest
// pipeline.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		s.metrics.ingestRejected.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			respondHistoryError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("upload exceeds the %d-byte limit", mbe.Limit), "")
			return
		}
		respondHistoryError(w, http.StatusBadRequest, "read upload: "+err.Error(), "")
		return
	}
	up, err := ingest.Prepare(r.Header.Get("Content-Type"), body)
	if err != nil {
		s.metrics.ingestRejected.Add(1)
		code := http.StatusBadRequest
		if errors.Is(err, ingest.ErrUnsupportedMedia) {
			code = http.StatusUnsupportedMediaType
		}
		respondHistoryError(w, code, err.Error(), "")
		return
	}
	s.metrics.ingestAccepted.Add(1)
	key := up.Key()
	s.registerHistoryID(key, up.ID)

	created, arts, err := s.runIngest(r.Context(), up)
	if err != nil {
		switch {
		case errors.Is(err, ingest.ErrNoUsableVersions):
			respondHistoryError(w, http.StatusUnprocessableEntity, err.Error(), up.ID)
		case errors.Is(err, context.DeadlineExceeded):
			respondHistoryError(w, http.StatusGatewayTimeout,
				"ingest run exceeded the request deadline; retry — the run continues and will be cached", up.ID)
		case errors.Is(err, context.Canceled):
			respondHistoryError(w, 499, "request canceled", up.ID)
		default:
			respondHistoryError(w, http.StatusInternalServerError, err.Error(), up.ID)
		}
		return
	}
	if !created {
		s.metrics.ingestDedup.Add(1)
	}
	resp := ingestResponse{
		Resource:      "history",
		ID:            up.ID,
		Created:       created,
		Artifacts:     ingest.SortedKeys(arts),
		Profile:       json.RawMessage(arts[ingest.ArtifactProfile]),
		Compatibility: json.RawMessage(arts[ingest.ArtifactCompatibility]),
	}
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(resp)
}

// runIngest resolves one prepared upload to its artifact set: memo hit,
// store restore, join of an in-flight run, or a fresh pipeline execution.
// created reports whether this call performed the run — every other path is
// a dedup hit. Like getStudy, the run itself is detached from the request
// context: an abandoned upload still completes, fills the cache and
// persists.
func (s *Server) runIngest(ctx context.Context, up *ingest.Upload) (created bool, arts map[string][]byte, err error) {
	key := up.Key()
	if arts, ok := s.histories.Artifacts(key); ok {
		s.metrics.cacheHits.Add(1)
		s.metrics.memoHits.Add(1)
		return false, arts, nil
	}
	s.metrics.cacheMisses.Add(1)
	s.restoreHistory(ctx, key, up.ID)
	if arts, ok := s.histories.Artifacts(key); ok {
		return false, arts, nil
	}
	ran := false // set by this caller's flight fn iff it executed the run
	ch := s.ingestFlight.DoChan(key, func() (any, error) {
		// Re-check under the flight: a run completed between this caller's
		// miss and its flight creation has already filled the cache.
		if arts, ok := s.histories.Artifacts(key); ok {
			return arts, nil
		}
		ran = true
		// A per-run tracer stamps the history's key on every event, so SSE
		// watchers of /v1/histories/{id}/events see the ingest.* stages live.
		runTracer := obs.NewTracer(obs.Options{
			Stages: s.metrics.stages, Logger: s.opts.Logger, Bus: s.bus, Seed: key,
		})
		runCtx := obs.WithTracer(context.Background(), runTracer)
		runCtx = obs.WithLogger(runCtx, s.opts.Logger)
		res, err := ingest.Run(runCtx, up)
		if err != nil {
			return nil, err
		}
		s.histories.Put(key, res)
		s.histories.MergeArtifacts(key, res.Artifacts)
		s.schedulePersistHistory(key, up.ID, res.Artifacts)
		s.opts.Logger.Info("history ingested",
			"history", up.ID[:16], "project", res.Profile.Project,
			"taxon", res.Profile.TaxonShort, "compatibility", res.Profile.Compatibility)
		return res.Artifacts, nil
	})
	select {
	case <-ctx.Done():
		s.metrics.timeouts.Add(1)
		if s.ingestFlight.Inflight(key) {
			s.metrics.orphanedRuns.Add(1)
			s.opts.Logger.Warn("request abandoned in-flight ingest run", "history", up.ID[:16])
		}
		return false, nil, ctx.Err()
	case res := <-ch:
		if res.Shared {
			s.metrics.flightJoins.Add(1)
		}
		if res.Err != nil {
			return false, nil, res.Err
		}
		return ran && !res.Shared, res.Val.(map[string][]byte), nil
	}
}

// restoreHistory is the store read-through for the history namespace. The
// snapshot's stored identity must match the requested one — the guard
// against a (vanishingly unlikely) truncated-key collision.
func (s *Server) restoreHistory(ctx context.Context, key int64, id string) {
	if s.opts.HistoryStore == nil || s.histories.Has(key) {
		return
	}
	s.historyLoads.Do(key, func() (any, error) {
		if s.histories.Has(key) {
			return nil, nil
		}
		lctx := obs.WithTracer(ctx, s.tracer)
		snap, err := s.opts.HistoryStore.Get(lctx, key)
		switch {
		case err == nil:
			if id != "" && snap.ID != "" && snap.ID != id {
				s.metrics.storeMisses.Add(1)
				s.opts.Logger.Warn("stored history identity mismatch; treating as miss",
					"requested", id[:16], "stored", snap.ID[:16])
				return nil, nil
			}
			s.metrics.storeHits.Add(1)
			s.histories.InstallSnapshot(key, snap.Artifacts)
			if snap.ID != "" {
				s.registerHistoryID(key, snap.ID)
			}
			s.opts.Logger.Info("history restored from store",
				"history", snap.ID[:16], "artifacts", len(snap.Artifacts), "saved_at", snap.SavedAt)
		case errors.Is(err, store.ErrNotFound):
			s.metrics.storeMisses.Add(1)
		default:
			s.metrics.storeCorrupt.Add(1)
			s.opts.Logger.Warn("stored history unusable; client must re-upload",
				"history", id[:16], "err", err)
		}
		return nil, nil
	})
}

// schedulePersistHistory queues the write-behind for a completed ingest run,
// mirroring schedulePersist: in-flight dedup per key, cleared win or lose,
// counted into the shared persistWG so SyncStore covers both namespaces.
func (s *Server) schedulePersistHistory(key int64, id string, arts map[string][]byte) {
	if s.opts.HistoryStore == nil {
		return
	}
	s.persistMu.Lock()
	if s.persistingHist[key] {
		s.persistMu.Unlock()
		return
	}
	s.persistingHist[key] = true
	s.persistMu.Unlock()

	s.persistWG.Add(1)
	go func() {
		defer s.persistWG.Done()
		ctx := obs.WithTracer(context.Background(), s.tracer)
		ctx = obs.WithLogger(ctx, s.opts.Logger)
		snap := &store.Snapshot{Seed: key, ID: id, SavedAt: time.Now().UTC(), Artifacts: arts}
		err := s.opts.HistoryStore.Put(ctx, key, snap)
		s.persistMu.Lock()
		delete(s.persistingHist, key)
		s.persistMu.Unlock()
		if err != nil {
			s.opts.Logger.Error("history snapshot save failed", "history", id[:16], "err", err)
			return
		}
		s.metrics.storeSaves.Add(1)
	}()
}

// parseHistoryID validates the {id} path value.
func parseHistoryID(r *http.Request) (string, int64, error) {
	id := r.PathValue("id")
	if !ingest.ValidID(id) {
		return id, 0, fmt.Errorf("history ids are 64 hex characters (the sha-256 returned by POST /v1/histories), got %q", id)
	}
	return id, ingest.Key(id), nil
}

// handleHistoryArtifact serves one rendered ingest artifact: memo hit →
// store restore → 404 (the daemon does not retain upload bodies, so an
// evicted un-persisted history needs a re-upload — which dedups back to the
// same identity).
func (s *Server) handleHistoryArtifact(w http.ResponseWriter, r *http.Request) {
	id, key, err := parseHistoryID(r)
	if err != nil {
		respondHistoryError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	artifact := r.PathValue("key")
	if !ingest.KnownArtifact(artifact) {
		respondHistoryError(w, http.StatusNotFound,
			fmt.Sprintf("unknown history artifact %q; available: %v", artifact, ingest.ArtifactKeys()), id)
		return
	}
	start := time.Now()
	if b, ok := s.histories.GetArtifact(key, artifact); ok {
		s.metrics.cacheHits.Add(1)
		s.metrics.memoHits.Add(1)
		w.Header().Set("Content-Type", ingest.ContentTypeFor(artifact))
		w.Write(b)
		s.metrics.ObserveLatency(artifact, time.Since(start))
		return
	}
	s.restoreHistory(r.Context(), key, id)
	if b, ok := s.histories.GetArtifact(key, artifact); ok {
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("Content-Type", ingest.ContentTypeFor(artifact))
		w.Write(b)
		s.metrics.ObserveLatency(artifact, time.Since(start))
		return
	}
	respondHistoryError(w, http.StatusNotFound,
		"unknown history; POST the history to /v1/histories first (re-uploads deduplicate)", id)
}

// handleHistoryResource describes one history in the unified resource
// model.
func (s *Server) handleHistoryResource(w http.ResponseWriter, r *http.Request) {
	id, key, err := parseHistoryID(r)
	if err != nil {
		respondHistoryError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	stored := false
	if lister, ok := s.opts.HistoryStore.(store.IDLister); ok {
		if ids, err := lister.ListIDs(r.Context()); err == nil {
			for _, st := range ids {
				if st == id {
					stored = true
					break
				}
			}
		}
	}
	cached := s.histories.Has(key)
	if !cached && !stored {
		respondHistoryError(w, http.StatusNotFound,
			"unknown history; POST the history to /v1/histories first", id)
		return
	}
	desc := map[string]any{
		"resource":  "history",
		"id":        id,
		"cached":    cached,
		"stored":    stored,
		"artifacts": ingest.ArtifactKeys(),
	}
	// Surface the history's SQL dialect (detected or client-supplied at
	// ingest) from the rendered profile when it is in the memo.
	if b, ok := s.histories.GetArtifact(key, ingest.ArtifactProfile); ok {
		var p struct {
			Dialect string `json:"dialect"`
		}
		if json.Unmarshal(b, &p) == nil && p.Dialect != "" {
			desc["dialect"] = p.Dialect
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(desc)
}

// handleHistories lists known histories: cached (most recent first) and
// stored identities, or — with ?limit=/?cursor= — one paginated ascending
// list of their union.
func (s *Server) handleHistories(w http.ResponseWriter, r *http.Request) {
	pr, err := parsePage(r)
	if err != nil {
		respondResourceError(w, http.StatusBadRequest, err.Error(), "history", "")
		return
	}
	cached := make([]string, 0, 8)
	for _, key := range s.histories.Seeds() {
		if id, ok := s.historyID(key); ok {
			cached = append(cached, id)
		}
	}
	stored := make([]string, 0, 8)
	if lister, ok := s.opts.HistoryStore.(store.IDLister); ok {
		if ids, err := lister.ListIDs(r.Context()); err == nil {
			stored = ids
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !pr.paged {
		json.NewEncoder(w).Encode(map[string]any{"cached": cached, "stored": stored})
		return
	}
	known := make(map[string]bool, len(cached)+len(stored))
	for _, id := range cached {
		known[id] = true
	}
	for _, id := range stored {
		known[id] = true
	}
	all := make([]string, 0, len(known))
	for id := range known {
		all = append(all, id)
	}
	sort.Strings(all)
	page, next := pageStrings(all, pr)
	json.NewEncoder(w).Encode(map[string]any{"histories": page, "next_cursor": next})
}

// handleHistoryEvents streams the ingest stages of one history as SSE. The
// events route carries no upload body, so it cannot trigger a run: it joins
// the stream of an in-flight ingest (keyed by the history's truncated
// address), or settles immediately for a cached/stored history, and answers
// 404 when the daemon has never seen the id.
func (s *Server) handleHistoryEvents(w http.ResponseWriter, r *http.Request) {
	id, key, err := parseHistoryID(r)
	if err != nil {
		respondHistoryError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	after := lastEventSeq(r)

	sub := s.bus.Subscribe(key, s.opts.EventBuffer)
	defer sub.Close()
	s.metrics.eventSubscribers.Add(1)
	defer s.metrics.eventSubscribers.Add(-1)

	// Subscribe first, then probe: an ingest that starts between the probe
	// and the subscription would otherwise lose its early events.
	wait := s.ingestFlight.Wait(key)
	settled := s.histories.Has(key)
	if !settled && wait == nil {
		s.restoreHistory(r.Context(), key, id)
		settled = s.histories.Has(key)
		if !settled {
			// Re-probe the flight: an upload may have raced in.
			if wait = s.ingestFlight.Wait(key); wait == nil {
				respondHistoryError(w, http.StatusNotFound,
					"unknown history and no ingest in flight; POST it to /v1/histories first", id)
				return
			}
		}
	}

	sw, ok := s.newSSEWriter(w, sub)
	if !ok {
		respondHistoryError(w, http.StatusInternalServerError,
			"response writer does not support streaming", id)
		return
	}
	sw.history = id
	sw.comment("stage events for history " + id)

	start := time.Now()
	if wait != nil {
		keepalive := time.NewTicker(keepaliveInterval)
		defer keepalive.Stop()
	stream:
		for {
			select {
			case <-r.Context().Done():
				return // client gone; the ingest continues detached
			case <-wait:
				break stream
			case ev, ok := <-sub.C():
				if !ok {
					break stream
				}
				sw.stage(ev, after)
			case <-keepalive.C:
				sw.comment("keepalive")
			}
		}
		// Every span of the run published before the flight settled; drain
		// what is still buffered.
		for {
			select {
			case ev, ok := <-sub.C():
				if ok {
					sw.stage(ev, after)
					continue
				}
			default:
			}
			break
		}
	}
	var runErr error
	if !s.histories.Has(key) {
		runErr = errors.New("ingest run failed; re-POST the history for the error detail")
	}
	sw.result(key, runErr, time.Since(start))
}

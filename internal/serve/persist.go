package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
	"github.com/schemaevo/schemaevo/internal/store"
	"github.com/schemaevo/schemaevo/internal/study"
)

// This file wires the persistence subsystem (internal/store) into the
// serving layer as a read-through / write-behind cache tier under the LRU:
//
//   - read-through: a seed missing from the LRU is first looked up in the
//     store; a verified snapshot restores the full artifact memo without a
//     pipeline run (the warm-restart path).
//   - write-behind: every completed pipeline run schedules an asynchronous
//     snapshot save — all artifacts are rendered once and persisted, so the
//     next daemon generation serves this seed from disk.
//
// A corrupt snapshot is counted, logged, and treated as a miss: the request
// degrades to a cold run whose write-behind replaces the damaged entry.

// restoreSnapshot attempts the store read-through for a seed not yet in the
// cache. Concurrent callers collapse onto one disk load. It never fails the
// request: every store error degrades to "not restored".
func (s *Server) restoreSnapshot(ctx context.Context, seed int64) {
	if s.opts.Store == nil || s.cache.Has(seed) {
		return
	}
	s.loads.Do(seed, func() (any, error) {
		if s.cache.Has(seed) { // restored (or run) while we queued on the flight
			return nil, nil
		}
		lctx := obs.WithTracer(ctx, s.tracer)
		snap, err := s.opts.Store.Get(lctx, seed)
		switch {
		case err == nil:
			s.metrics.storeHits.Add(1)
			s.cache.InstallSnapshot(seed, snap.Artifacts)
			s.opts.Logger.Info("snapshot restored from store",
				"seed", seed, "artifacts", len(snap.Artifacts), "saved_at", snap.SavedAt)
		case errors.Is(err, store.ErrNotFound):
			s.metrics.storeMisses.Add(1)
		default:
			// Corruption or I/O damage: degrade to a cold run, never fail.
			s.metrics.storeCorrupt.Add(1)
			s.opts.Logger.Warn("store snapshot unusable; falling back to pipeline",
				"seed", seed, "err", err)
		}
		return nil, nil
	})
}

// schedulePersist queues the write-behind for a freshly completed pipeline
// run. The persisting mark is in-flight dedup only — at most one save per
// seed runs at a time — and is cleared when the save finishes, win or lose.
// Clearing on success matters: a snapshot later damaged on disk or evicted
// by the retention GC must be re-persistable by the next run within the same
// daemon generation, or the degrade-and-replace contract above breaks.
func (s *Server) schedulePersist(seed int64, st *study.Study) {
	if s.opts.Store == nil {
		return
	}
	s.persistMu.Lock()
	if s.persisting[seed] {
		s.persistMu.Unlock()
		return
	}
	s.persisting[seed] = true
	s.persistMu.Unlock()

	s.persistWG.Add(1)
	go func() {
		defer s.persistWG.Done()
		err := s.persistStudy(seed, st)
		s.persistMu.Lock()
		delete(s.persisting, seed)
		s.persistMu.Unlock()
		if err != nil {
			s.opts.Logger.Error("snapshot save failed", "seed", seed, "err", err)
			return
		}
		s.metrics.storeSaves.Add(1)
	}()
}

// persistStudy renders the study's complete artifact set and writes the
// snapshot. The render also warms the artifact memo of the seed's cache
// entry (if it is still resident), so the renders are paid once. A panic in
// an experiment driver is contained here — persistence must never take the
// daemon down.
func (s *Server) persistStudy(seed int64, st *study.Study) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("render panicked: %v", r)
		}
	}()
	// Deliberately detached from any request context: the save belongs to
	// the daemon, not to the request that happened to trigger the run.
	ctx := obs.WithTracer(context.Background(), s.tracer)
	ctx = obs.WithLogger(ctx, s.opts.Logger)
	start := time.Now()
	arts, err := s.render(ctx, st)
	if err != nil {
		return err
	}
	s.cache.MergeArtifacts(seed, arts)
	snap := &store.Snapshot{
		Seed:      seed,
		SavedAt:   time.Now().UTC(),
		Summary:   st.Summary(),
		Artifacts: arts,
	}
	if err := s.opts.Store.Put(ctx, seed, snap); err != nil {
		return err
	}
	s.opts.Logger.Info("snapshot saved to store",
		"seed", seed, "artifacts", len(arts), "took", time.Since(start).Round(time.Millisecond))
	return nil
}

// SyncStore blocks until every scheduled write-behind snapshot save has
// finished. Prewarm calls it so prewarmed seeds are durable before traffic;
// the graceful-shutdown path calls it so a drained daemon leaves a complete
// store behind.
func (s *Server) SyncStore() { s.persistWG.Wait() }

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
	"github.com/schemaevo/schemaevo/internal/study"
)

// spanRunner is a stub pipeline that emits a fixed nested span tree on the
// run context — the shape the SSE stream is built from — and optionally
// blocks until released. It serves the shared seed-1 study so artifact
// requests against the same server also succeed.
type spanRunner struct {
	tb      testing.TB
	spans   int          // top-level stages to emit (each with one child)
	runs    atomic.Int64 // pipeline executions observed
	started chan struct{} // closed when the first run begins, if non-nil
	release chan struct{} // run blocks here before emitting, if non-nil
}

func (r *spanRunner) Run(ctx context.Context, seed int64) (*study.Study, error) {
	r.runs.Add(1)
	if r.started != nil {
		close(r.started)
	}
	if r.release != nil {
		<-r.release
	}
	for i := 0; i < r.spans; i++ {
		sctx, sp := obs.Start(ctx, fmt.Sprintf("stage.%02d", i), obs.Int("i", int64(i)))
		_, child := obs.Start(sctx, fmt.Sprintf("stage.%02d.child", i))
		child.End()
		sp.End()
	}
	st, err := realStudy()
	if err != nil {
		r.tb.Errorf("pipeline: %v", err)
	}
	return st, err
}

// sseEvent is one parsed client-side SSE frame.
type sseEvent struct {
	id, event, data string
}

// readSSE consumes frames off an SSE body until a `result` event or EOF.
func readSSE(tb testing.TB, body *bufio.Reader) []sseEvent {
	tb.Helper()
	var out []sseEvent
	var cur sseEvent
	for {
		line, err := body.ReadString('\n')
		line = strings.TrimRight(line, "\n")
		if err != nil {
			return out
		}
		switch {
		case line == "":
			if cur != (sseEvent{}) {
				out = append(out, cur)
				if cur.event == "result" {
					return out
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, ":"): // comment/keepalive
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
}

// openStream GETs an SSE path and returns the response plus a frame reader.
// The caller must close resp.Body.
func openStream(tb testing.TB, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, *bufio.Reader) {
	tb.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		tb.Fatalf("GET %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		tb.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		tb.Fatalf("content type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// TestSeedEventsColdRunStream is the acceptance path: a cold seed request
// streams the run's stage events — at least 8 distinct ones — before the
// terminal result, with monotonic seqs and stable `<seed>:<seq>` ids.
func TestSeedEventsColdRunStream(t *testing.T) {
	runner := &spanRunner{tb: t, spans: 6} // 6 stages × (start+end) × 2 levels = 24 events
	srv := New(Options{Runner: runner})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, br := openStream(t, ts, "/v1/seeds/1/events", nil)
	defer resp.Body.Close()
	frames := readSSE(t, br)

	if len(frames) == 0 || frames[len(frames)-1].event != "result" {
		t.Fatalf("stream did not end with a result event: %+v", frames)
	}
	stages := frames[:len(frames)-1]
	distinct := map[string]bool{}
	var lastSeq int64
	for i, fr := range stages {
		if fr.event != "stage" {
			t.Fatalf("frame %d: event %q, want stage", i, fr.event)
		}
		var ev struct {
			Seed  int64  `json:"seed"`
			Seq   int64  `json:"seq"`
			Span  string `json:"span"`
			Phase string `json:"phase"`
		}
		if err := json.Unmarshal([]byte(fr.data), &ev); err != nil {
			t.Fatalf("frame %d: bad JSON %q: %v", i, fr.data, err)
		}
		if ev.Seed != 1 {
			t.Errorf("frame %d: seed %d", i, ev.Seed)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("frame %d: seq %d not monotonic after %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if want := fmt.Sprintf("1:%d", ev.Seq); fr.id != want {
			t.Errorf("frame %d: id %q, want %q", i, fr.id, want)
		}
		distinct[ev.Span+"/"+ev.Phase] = true
	}
	if len(distinct) < 8 {
		t.Errorf("saw %d distinct stage events, want >= 8", len(distinct))
	}

	var res struct {
		Status  string `json:"status"`
		Events  int64  `json:"events"`
		Dropped int64  `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(frames[len(frames)-1].data), &res); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	if res.Status != "ok" {
		t.Errorf("result status %q", res.Status)
	}
	if res.Events != int64(len(stages)) {
		t.Errorf("result events %d, want %d", res.Events, len(stages))
	}
	if res.Dropped != 0 {
		t.Errorf("result dropped %d, want 0", res.Dropped)
	}
	if got := srv.Metrics().Snapshot().EventsSent; got != int64(len(stages)) {
		t.Errorf("metrics events sent %d, want %d", got, len(stages))
	}
}

// TestSeedEventsStreamIsDeterministic re-runs a cold single-worker stream
// on two servers and expects byte-identical stage frames.
func TestSeedEventsStreamIsDeterministic(t *testing.T) {
	stream := func() []sseEvent {
		srv := New(Options{Runner: &spanRunner{tb: t, spans: 5}})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		resp, br := openStream(t, ts, "/v1/seeds/1/events", nil)
		defer resp.Body.Close()
		return readSSE(t, br)
	}
	a, b := stream(), stream()
	if len(a) != len(b) {
		t.Fatalf("frame counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].id != b[i].id || a[i].event != b[i].event {
			t.Fatalf("frame %d differs: %+v vs %+v", i, a[i], b[i])
		}
		// Stage payloads are byte-identical except the timing field.
		if a[i].event == "stage" && !strings.Contains(a[i].data, `"elapsed_ms"`) && a[i].data != b[i].data {
			t.Fatalf("frame %d data differs:\n%s\n%s", i, a[i].data, b[i].data)
		}
	}
}

// TestSeedEventsWatchersShareOneRun: N concurrent watchers plus an artifact
// request all join one singleflight run.
func TestSeedEventsWatchersShareOneRun(t *testing.T) {
	runner := &spanRunner{tb: t, spans: 4, started: make(chan struct{}), release: make(chan struct{})}
	srv := New(Options{Runner: runner})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const watchers = 3
	var wg sync.WaitGroup
	results := make([][]sseEvent, watchers)
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, br := openStream(t, ts, "/v1/seeds/1/events", nil)
			defer resp.Body.Close()
			results[i] = readSSE(t, br)
		}(i)
	}
	<-runner.started
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _ := get(t, ts, "/v1/seeds/1/artifacts/funnel")
		if code != http.StatusOK {
			t.Errorf("artifact status %d", code)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let every watcher subscribe pre-release
	close(runner.release)
	wg.Wait()

	if got := runner.runs.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times, want 1", got)
	}
	for i, frames := range results {
		if len(frames) == 0 || frames[len(frames)-1].event != "result" {
			t.Errorf("watcher %d: no result event", i)
		}
	}
}

// TestSeedEventsDisconnectCancelsNothingShared: a watcher that walks away
// mid-run leaves the pipeline running; the run completes and fills the cache.
func TestSeedEventsDisconnectCancelsNothingShared(t *testing.T) {
	runner := &spanRunner{tb: t, spans: 4, started: make(chan struct{}), release: make(chan struct{})}
	srv := New(Options{Runner: runner})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/seeds/1/events", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started
	cancel() // client disconnects mid-run
	resp.Body.Close()
	close(runner.release)

	// The detached run still completes and fills the cache: the next artifact
	// request is a cache hit, not a second execution.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Snapshot().PipelineInflight > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	code, _, _ := get(t, ts, "/v1/seeds/1/artifacts/funnel")
	if code != http.StatusOK {
		t.Fatalf("artifact after disconnect: status %d", code)
	}
	if got := runner.runs.Load(); got != 1 {
		t.Errorf("pipeline ran %d times, want 1 (disconnect must not cancel or re-run)", got)
	}
}

// slowFlushWriter is a ResponseWriter whose writes stall — the slow SSE
// consumer that forces the subscriber ring to drop oldest.
type slowFlushWriter struct {
	httptest.ResponseRecorder
	delay time.Duration
}

func (w *slowFlushWriter) Write(p []byte) (int, error) {
	time.Sleep(w.delay)
	return w.ResponseRecorder.Write(p)
}
func (w *slowFlushWriter) Flush() {}

// TestSeedEventsSlowConsumerDropsOldest: with a tiny ring and a stalling
// client, the publisher never blocks; the stream loses oldest events and
// reports the loss in the result frame and the process metrics.
func TestSeedEventsSlowConsumerDropsOldest(t *testing.T) {
	runner := &spanRunner{tb: t, spans: 60} // 240 events against a 4-slot ring
	srv := New(Options{Runner: runner, EventBuffer: 4})

	w := &slowFlushWriter{ResponseRecorder: *httptest.NewRecorder(), delay: 2 * time.Millisecond}
	req := httptest.NewRequest(http.MethodGet, "/v1/seeds/1/events", nil)
	srv.ServeHTTP(w, req)

	frames := readSSE(t, bufio.NewReader(w.Body))
	if len(frames) == 0 || frames[len(frames)-1].event != "result" {
		t.Fatalf("no result event")
	}
	var res struct {
		Status  string `json:"status"`
		Events  int64  `json:"events"`
		Dropped int64  `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(frames[len(frames)-1].data), &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" {
		t.Errorf("result status %q", res.Status)
	}
	if res.Dropped == 0 {
		t.Error("expected dropped events with a stalled consumer and a 4-slot ring")
	}
	if res.Events+res.Dropped != 240 {
		t.Errorf("events %d + dropped %d != 240 published", res.Events, res.Dropped)
	}
	if got := srv.Metrics().Snapshot().EventsDropped; got != res.Dropped {
		t.Errorf("metrics dropped %d, want %d", got, res.Dropped)
	}
}

// TestSeedEventsResume: a reconnect with Last-Event-ID (or ?after=) skips
// everything at or below the resume seq, even though the resumed run is a
// fresh execution.
func TestSeedEventsResume(t *testing.T) {
	runner := &spanRunner{tb: t, spans: 4}
	srv := New(Options{Runner: runner})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, br := openStream(t, ts, "/v1/seeds/1/events", map[string]string{"Last-Event-ID": "1:10"})
	defer resp.Body.Close()
	frames := readSSE(t, br)
	stages := frames[:len(frames)-1]
	// 16 events total; seq <= 10 skipped.
	if len(stages) != 6 {
		t.Fatalf("resumed stream relayed %d stage events, want 6", len(stages))
	}
	for _, fr := range stages {
		var ev struct {
			Seq int64 `json:"seq"`
		}
		json.Unmarshal([]byte(fr.data), &ev)
		if ev.Seq <= 10 {
			t.Errorf("resumed stream replayed seq %d", ev.Seq)
		}
	}
}

// TestDebugEventsFirehose: the firehose relays span events for any seed and
// never triggers work itself.
func TestDebugEventsFirehose(t *testing.T) {
	runner := &spanRunner{tb: t, spans: 3}
	srv := New(Options{Runner: runner})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/debug/events", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	if got := runner.runs.Load(); got != 0 {
		t.Fatalf("firehose triggered %d runs", got)
	}
	// Trigger a run for seed 9 via a normal artifact request.
	go func() {
		if resp, err := http.Get(ts.URL + "/v1/seeds/9/artifacts/funnel"); err == nil {
			resp.Body.Close()
		}
	}()

	// The firehose sees its stage events (seed 9) arrive live. The stream
	// has no terminal event, so frames are read incrementally.
	var sawSeed9 bool
	deadline := time.After(10 * time.Second)
	got := make(chan sseEvent)
	go func() {
		var cur sseEvent
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				if cur != (sseEvent{}) {
					select {
					case got <- cur:
					case <-ctx.Done():
						return
					}
					cur = sseEvent{}
				}
			case strings.HasPrefix(line, ":"):
			case strings.HasPrefix(line, "id: "):
				cur.id = line[len("id: "):]
			case strings.HasPrefix(line, "event: "):
				cur.event = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				cur.data = line[len("data: "):]
			}
		}
	}()
	for !sawSeed9 {
		select {
		case fr := <-got:
			if fr.event == "stage" && strings.Contains(fr.data, `"seed":9`) {
				sawSeed9 = true
			}
		case <-deadline:
			t.Fatal("firehose never relayed seed-9 stage events")
		}
	}
	if got := srv.Metrics().Snapshot().EventSubscribers; got != 1 {
		t.Errorf("subscriber gauge %d, want 1", got)
	}
}

// TestWarmSeedEventsSettleInstantly: a cached seed produces no stage events,
// just the terminal result.
func TestWarmSeedEventsSettleInstantly(t *testing.T) {
	runner := &spanRunner{tb: t, spans: 4}
	srv := New(Options{Runner: runner})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, _, _ := get(t, ts, "/v1/seeds/1/artifacts/funnel"); code != http.StatusOK {
		t.Fatal("warming request failed")
	}
	resp, br := openStream(t, ts, "/v1/seeds/1/events", nil)
	defer resp.Body.Close()
	frames := readSSE(t, br)
	if len(frames) != 1 || frames[0].event != "result" {
		t.Fatalf("warm stream frames: %+v, want just a result", frames)
	}
	if got := runner.runs.Load(); got != 1 {
		t.Errorf("warm watcher re-ran the pipeline (%d runs)", got)
	}
}

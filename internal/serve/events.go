package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
)

// This file is the daemon's live-telemetry surface: two Server-Sent-Events
// endpoints on top of the obs span event bus.
//
//	GET /v1/seeds/{seed}/events   stage progress of one run, triggering (or
//	                              joining, via the singleflight) the run if
//	                              the seed is cold; ends with a `result` event
//	GET /v1/debug/events          firehose of every span event on the daemon,
//	                              across all seeds, until the client leaves
//
// Events use `id: <seed>:<seq>` where seq is the run tracer's publication
// sequence — the event's position in the run's canonical stream. Because the
// pipeline is deterministic per seed, a reconnecting client (or the proxy
// failing over mid-stream) sends `Last-Event-ID: <seed>:<n>` and the daemon
// skips everything it already saw, even when the resumed run is a fresh
// execution on another shard.

// keepaliveInterval is how often an otherwise idle event stream emits an
// SSE comment so intermediaries don't reap the connection. A var, not a
// const: tests shorten it.
var keepaliveInterval = 15 * time.Second

// isEventStreamPath reports whether path is one of the SSE routes, which
// are exempt from the per-request deadline.
func isEventStreamPath(path string) bool {
	return path == "/v1/debug/events" ||
		(strings.HasPrefix(path, "/v1/seeds/") && strings.HasSuffix(path, "/events")) ||
		(strings.HasPrefix(path, "/v1/histories/") && strings.HasSuffix(path, "/events"))
}

// stageEvent is the SSE `stage` payload. Field order is fixed by the
// struct, so one stage tree always serializes byte-identically.
type stageEvent struct {
	Seed      int64          `json:"seed"` // the run's int64 key; a truncated content address for histories
	History   string         `json:"history,omitempty"`
	Seq       int64          `json:"seq"`
	Span      string         `json:"span"`
	ID        int64          `json:"id"`
	Parent    int64          `json:"parent"`
	Depth     int            `json:"depth"`
	Phase     string         `json:"phase"` // "start" | "end"
	ElapsedMS float64        `json:"elapsed_ms,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// resultEvent is the terminal SSE payload of a seed stream.
type resultEvent struct {
	Seed      int64   `json:"seed"`
	History   string  `json:"history,omitempty"`
	Status    string  `json:"status"` // "ok" | "error"
	Error     string  `json:"error,omitempty"`
	Events    int64   `json:"events"`
	Dropped   int64   `json:"dropped"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// stagePayload converts a bus event to its wire form.
func stagePayload(ev obs.Event) stageEvent {
	se := stageEvent{
		Seed:   ev.Seed,
		Seq:    ev.Seq,
		Span:   ev.Span,
		ID:     ev.ID,
		Parent: ev.Parent,
		Depth:  ev.Depth,
		Phase:  "start",
	}
	if ev.End {
		se.Phase = "end"
		se.ElapsedMS = float64(ev.Elapsed) / float64(time.Millisecond)
		if len(ev.Attrs) > 0 {
			// encoding/json writes map keys sorted, so attrs stay
			// deterministic too.
			se.Attrs = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				se.Attrs[a.Key] = a.Value()
			}
		}
	}
	return se
}

// sseWriter serializes SSE frames onto one response, flushing per frame and
// tracking the sent count and the per-stream dropped-event sync.
type sseWriter struct {
	w       http.ResponseWriter
	fl      http.Flusher
	metrics *Metrics
	sub     *obs.Subscriber
	history string // full history identity stamped on frames of a history stream
	sent    int64
	synced  int64 // dropped count already pushed into the metrics
}

func (s *Server) newSSEWriter(w http.ResponseWriter, sub *obs.Subscriber) (*sseWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	return &sseWriter{w: w, fl: fl, metrics: s.metrics, sub: sub}, true
}

// stage writes one stage frame unless its seq is at or below after (the
// Last-Event-ID resume point).
func (sw *sseWriter) stage(ev obs.Event, after int64) {
	if ev.Seq <= after && ev.Seq > 0 {
		return
	}
	payload := stagePayload(ev)
	payload.History = sw.history
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	fmt.Fprintf(sw.w, "id: %d:%d\nevent: stage\ndata: %s\n\n", ev.Seed, ev.Seq, data)
	sw.fl.Flush()
	sw.sent++
	sw.metrics.eventsSent.Add(1)
	sw.syncDropped()
}

// result writes the terminal frame of a seed stream.
func (sw *sseWriter) result(seed int64, runErr error, elapsed time.Duration) {
	res := resultEvent{
		Seed:      seed,
		History:   sw.history,
		Status:    "ok",
		Events:    sw.sent,
		Dropped:   sw.sub.Dropped(),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if runErr != nil {
		res.Status = "error"
		res.Error = runErr.Error()
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	fmt.Fprintf(sw.w, "event: result\ndata: %s\n\n", data)
	sw.fl.Flush()
	sw.syncDropped()
}

// comment writes an SSE comment line (keepalives, provenance notes).
func (sw *sseWriter) comment(text string) {
	fmt.Fprintf(sw.w, ": %s\n\n", text)
	sw.fl.Flush()
}

// syncDropped folds the subscriber's drop counter into the process metric
// incrementally, so mid-stream scrapes see losses as they happen.
func (sw *sseWriter) syncDropped() {
	if d := sw.sub.Dropped(); d > sw.synced {
		sw.metrics.eventsDropped.Add(d - sw.synced)
		sw.synced = d
	}
}

// lastEventSeq parses the resume point from the Last-Event-ID header (or
// the ?after= query parameter, for curl convenience): either "<seed>:<seq>"
// or a bare "<seq>". Malformed values mean "from the beginning".
func lastEventSeq(r *http.Request) int64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0
	}
	if i := strings.LastIndexByte(raw, ':'); i >= 0 {
		raw = raw[i+1:]
	}
	seq, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || seq < 0 {
		return 0
	}
	return seq
}

// handleSeedEvents streams one seed's pipeline stage progress as SSE. A
// cold seed triggers the run; concurrent watchers and artifact requests all
// share that one execution through the singleflight. The stream ends with a
// `result` event once the run (or restore, or cache hit) settles. A client
// that disconnects mid-run cancels nothing shared — the run keeps going and
// fills the cache, exactly like an abandoned artifact request.
func (s *Server) handleSeedEvents(w http.ResponseWriter, r *http.Request) {
	seed, err := parseSeed(r)
	if err != nil {
		respondError(w, true, http.StatusBadRequest, err.Error(), 0)
		return
	}
	after := lastEventSeq(r)

	sub := s.bus.Subscribe(seed, s.opts.EventBuffer)
	defer sub.Close()
	s.metrics.eventSubscribers.Add(1)
	defer s.metrics.eventSubscribers.Add(-1)

	sw, ok := s.newSSEWriter(w, sub)
	if !ok {
		respondError(w, true, http.StatusInternalServerError,
			"response writer does not support streaming", seed)
		return
	}
	sw.comment(fmt.Sprintf("stage events for seed %d", seed))

	// Kick the run. ensureSeed settles instantly for cached or
	// snapshot-restored seeds (zero stage events, straight to result) and
	// otherwise runs or joins the pipeline.
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- s.ensureSeed(r.Context(), seed) }()

	keepalive := time.NewTicker(keepaliveInterval)
	defer keepalive.Stop()
	var runErr error
wait:
	for {
		select {
		case <-r.Context().Done():
			return // client gone; any in-flight run continues detached
		case runErr = <-done:
			break wait
		case ev, ok := <-sub.C():
			if !ok {
				break wait
			}
			sw.stage(ev, after)
		case <-keepalive.C:
			sw.comment("keepalive")
		}
	}
	// Every span of the run ended (and so published) before ensureSeed
	// returned; drain what is still buffered, then close with the result.
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				break
			}
			sw.stage(ev, after)
			continue
		default:
		}
		break
	}
	sw.result(seed, runErr, time.Since(start))
}

// handleDebugEvents is the firehose: every span event on the daemon —
// pipeline runs for any seed, render-time experiment spans, store
// maintenance — until the client disconnects. It never triggers work.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	sub := s.bus.Subscribe(0, s.opts.EventBuffer)
	defer sub.Close()
	s.metrics.eventSubscribers.Add(1)
	defer s.metrics.eventSubscribers.Add(-1)

	sw, ok := s.newSSEWriter(w, sub)
	if !ok {
		respondError(w, true, http.StatusInternalServerError,
			"response writer does not support streaming", 0)
		return
	}
	sw.comment("span event firehose")

	keepalive := time.NewTicker(keepaliveInterval)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			sw.stage(ev, 0)
		case <-keepalive.C:
			sw.comment("keepalive")
		}
	}
}

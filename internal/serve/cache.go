package serve

import (
	"container/list"
	"strings"
	"sync"

	"github.com/schemaevo/schemaevo/internal/ingest"
	"github.com/schemaevo/schemaevo/internal/study"
)

// resourceCache is a bounded LRU keyed by int64 — the seed for studies, the
// truncated content address for ingested histories. Each entry carries up to
// two layers: the completed live value V (immutable once built — every
// reader only reads, so one cached value can back any number of concurrent
// renders) and the artifact memo — rendered bytes per artifact key, so a
// cache hit never re-renders report.html or profile.json. Entries restored
// from the persistent store hold only the memo (no live value); the value
// layer is filled in if a later request needs a live pipeline result. The
// cache is guarded by one mutex — critical sections are pointer moves and
// map lookups, never pipeline work or rendering.
type resourceCache[V any] struct {
	mu      sync.Mutex
	cap     int
	order   *list.List              // front = most recently used
	entries map[int64]*list.Element // key → element whose Value is *cacheEntry[V]
	metrics *Metrics
}

type cacheEntry[V any] struct {
	key       int64
	val       V
	hasVal    bool              // false for snapshot-only entries
	artifacts map[string][]byte // rendered artifact memo, keyed like store snapshots
	fromStore bool              // artifacts came from a full persisted snapshot
}

// newResourceCache returns an LRU holding at most capacity entries.
// Capacity is clamped to at least 1.
func newResourceCache[V any](capacity int, m *Metrics) *resourceCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &resourceCache[V]{
		cap:     capacity,
		order:   list.New(),
		entries: map[int64]*list.Element{},
		metrics: m,
	}
}

// newStudyCache is the seed-keyed instantiation serving *study.Study values.
func newStudyCache(capacity int, m *Metrics) *resourceCache[*study.Study] {
	return newResourceCache[*study.Study](capacity, m)
}

// newHistoryCache is the history-keyed instantiation serving ingest results.
func newHistoryCache(capacity int, m *Metrics) *resourceCache[*ingest.Result] {
	return newResourceCache[*ingest.Result](capacity, m)
}

// Get returns the cached live value for key, refreshing its recency.
// Snapshot-only entries (no live value) report a miss — callers needing the
// live value must run the pipeline.
func (c *resourceCache[V]) Get(key int64) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	el, ok := c.entries[key]
	if !ok || !el.Value.(*cacheEntry[V]).hasVal {
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).val, true
}

// Put inserts (or refreshes) a live value, evicting the least recently used
// entry beyond capacity. An existing snapshot-only entry is upgraded in
// place — its artifact memo survives.
func (c *resourceCache[V]) Put(key int64, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry[V])
		e.val = v
		e.hasVal = true
		c.order.MoveToFront(el)
		return
	}
	c.insertLocked(&cacheEntry[V]{key: key, val: v, hasVal: true})
}

// GetArtifact returns the memoized bytes for (key, artifact), refreshing the
// entry's recency.
func (c *resourceCache[V]) GetArtifact(key int64, artifact string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	b, ok := el.Value.(*cacheEntry[V]).artifacts[artifact]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return b, true
}

// PutArtifact memoizes one rendered artifact on an existing entry. A key
// evicted since its render is dropped silently — the memo never resurrects
// entries past the LRU bound.
func (c *resourceCache[V]) PutArtifact(key int64, artifact string, b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry[V])
	if e.artifacts == nil {
		e.artifacts = map[string][]byte{}
	}
	e.artifacts[artifact] = b
}

// MergeArtifacts memoizes a batch of rendered artifacts on an existing
// entry without overwriting keys already present.
func (c *resourceCache[V]) MergeArtifacts(key int64, arts map[string][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry[V])
	if e.artifacts == nil {
		e.artifacts = make(map[string][]byte, len(arts))
	}
	for k, v := range arts {
		if _, dup := e.artifacts[k]; !dup {
			e.artifacts[k] = v
		}
	}
}

// Artifacts returns a copy of the entry's artifact memo map, refreshing
// recency. ok requires at least one memoized artifact — a value-only entry
// whose artifacts were never rendered reports false.
func (c *resourceCache[V]) Artifacts(key int64) (map[string][]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry[V])
	if len(e.artifacts) == 0 {
		return nil, false
	}
	c.order.MoveToFront(el)
	out := make(map[string][]byte, len(e.artifacts))
	for k, v := range e.artifacts {
		out[k] = v
	}
	return out, true
}

// InstallSnapshot inserts a snapshot-only entry for a key restored from
// the persistent store: all artifacts, no live value. It counts toward the
// LRU bound like any pipeline result. If the key is already cached the
// snapshot's artifacts merge into it.
func (c *resourceCache[V]) InstallSnapshot(key int64, arts map[string][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry[V])
		if e.artifacts == nil {
			e.artifacts = make(map[string][]byte, len(arts))
		}
		for k, v := range arts {
			if _, dup := e.artifacts[k]; !dup {
				e.artifacts[k] = v
			}
		}
		e.fromStore = true
		c.order.MoveToFront(el)
		return
	}
	memo := make(map[string][]byte, len(arts))
	for k, v := range arts {
		memo[k] = v
	}
	c.insertLocked(&cacheEntry[V]{key: key, artifacts: memo, fromStore: true})
}

// insertLocked pushes a fresh entry and enforces the capacity bound.
// Caller holds c.mu.
func (c *resourceCache[V]) insertLocked(e *cacheEntry[V]) {
	c.entries[e.key] = c.order.PushFront(e)
	// The entry gauge is kept by increments, not recomputed from this
	// cache's length: the seed and history caches share one Metrics, and the
	// gauge reports their combined population.
	if c.metrics != nil {
		c.metrics.cacheEntries.Add(1)
	}
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry[V]).key)
		if c.metrics != nil {
			c.metrics.cacheEvicts.Add(1)
			c.metrics.cacheEntries.Add(-1)
		}
	}
}

// Has reports whether key is present at all — as a live value, a snapshot
// restore, or both. It does not refresh recency.
func (c *resourceCache[V]) Has(key int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// MissingStoredFigure reports whether key's entry is a store-restored
// snapshot that carries figures but not the named one — the case where the
// figure name is simply unknown and a pipeline run would not help.
func (c *resourceCache[V]) MissingStoredFigure(key int64, artifact string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	e := el.Value.(*cacheEntry[V])
	if !e.fromStore || e.hasVal {
		return false
	}
	if _, ok := e.artifacts[artifact]; ok {
		return false
	}
	for k := range e.artifacts {
		if strings.HasPrefix(k, "figures/") {
			return true
		}
	}
	return false
}

// Len reports the current number of cached entries.
func (c *resourceCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Seeds returns the cached keys from most to least recently used.
func (c *resourceCache[V]) Seeds() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry[V]).key)
	}
	return out
}

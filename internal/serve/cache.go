package serve

import (
	"container/list"
	"strings"
	"sync"

	"github.com/schemaevo/schemaevo/internal/study"
)

// studyCache is a bounded LRU keyed by seed. Each entry carries up to two
// layers: the completed *study.Study (immutable once built — every Run*
// driver only reads, so one cached study can back any number of concurrent
// renders) and the artifact memo — rendered bytes per artifact key, so a
// cache hit never re-renders report.html or export.csv. Entries restored
// from the persistent store hold only the memo (study == nil); the study
// layer is filled in if a later request needs a live pipeline result. The
// cache is guarded by one mutex — critical sections are pointer moves and
// map lookups, never pipeline work or rendering.
type studyCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List              // front = most recently used
	entries map[int64]*list.Element // seed → element whose Value is *cacheEntry
	metrics *Metrics
}

type cacheEntry struct {
	seed      int64
	study     *study.Study      // nil for snapshot-only entries
	artifacts map[string][]byte // rendered artifact memo, keyed like store snapshots
	fromStore bool              // artifacts came from a full persisted snapshot
}

// newStudyCache returns an LRU holding at most capacity entries. Capacity
// is clamped to at least 1.
func newStudyCache(capacity int, m *Metrics) *studyCache {
	if capacity < 1 {
		capacity = 1
	}
	return &studyCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[int64]*list.Element{},
		metrics: m,
	}
}

// Get returns the cached study for seed, refreshing its recency. Snapshot-
// only entries (no live study) report a miss — callers needing a *study.Study
// must run the pipeline.
func (c *studyCache) Get(seed int64) (*study.Study, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[seed]
	if !ok || el.Value.(*cacheEntry).study == nil {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).study, true
}

// Put inserts (or refreshes) a study, evicting the least recently used
// entry beyond capacity. An existing snapshot-only entry is upgraded in
// place — its artifact memo survives.
func (c *studyCache) Put(seed int64, s *study.Study) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[seed]; ok {
		el.Value.(*cacheEntry).study = s
		c.order.MoveToFront(el)
		return
	}
	c.insertLocked(&cacheEntry{seed: seed, study: s})
}

// GetArtifact returns the memoized bytes for (seed, key), refreshing the
// entry's recency.
func (c *studyCache) GetArtifact(seed int64, key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[seed]
	if !ok {
		return nil, false
	}
	b, ok := el.Value.(*cacheEntry).artifacts[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return b, true
}

// PutArtifact memoizes one rendered artifact on an existing entry. A seed
// evicted since its render is dropped silently — the memo never resurrects
// entries past the LRU bound.
func (c *studyCache) PutArtifact(seed int64, key string, b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[seed]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.artifacts == nil {
		e.artifacts = map[string][]byte{}
	}
	e.artifacts[key] = b
}

// MergeArtifacts memoizes a batch of rendered artifacts on an existing
// entry without overwriting keys already present.
func (c *studyCache) MergeArtifacts(seed int64, arts map[string][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[seed]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.artifacts == nil {
		e.artifacts = make(map[string][]byte, len(arts))
	}
	for k, v := range arts {
		if _, dup := e.artifacts[k]; !dup {
			e.artifacts[k] = v
		}
	}
}

// InstallSnapshot inserts a snapshot-only entry for a seed restored from
// the persistent store: all artifacts, no live study. It counts toward the
// LRU bound like any pipeline result. If the seed is already cached the
// snapshot's artifacts merge into it.
func (c *studyCache) InstallSnapshot(seed int64, arts map[string][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[seed]; ok {
		e := el.Value.(*cacheEntry)
		if e.artifacts == nil {
			e.artifacts = make(map[string][]byte, len(arts))
		}
		for k, v := range arts {
			if _, dup := e.artifacts[k]; !dup {
				e.artifacts[k] = v
			}
		}
		e.fromStore = true
		c.order.MoveToFront(el)
		return
	}
	memo := make(map[string][]byte, len(arts))
	for k, v := range arts {
		memo[k] = v
	}
	c.insertLocked(&cacheEntry{seed: seed, artifacts: memo, fromStore: true})
}

// insertLocked pushes a fresh entry and enforces the capacity bound.
// Caller holds c.mu.
func (c *studyCache) insertLocked(e *cacheEntry) {
	c.entries[e.seed] = c.order.PushFront(e)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).seed)
		if c.metrics != nil {
			c.metrics.cacheEvicts.Add(1)
		}
	}
	if c.metrics != nil {
		c.metrics.cacheEntries.Store(int64(c.order.Len()))
	}
}

// Has reports whether seed is present at all — as a live study, a snapshot
// restore, or both. It does not refresh recency.
func (c *studyCache) Has(seed int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[seed]
	return ok
}

// MissingStoredFigure reports whether seed's entry is a store-restored
// snapshot that carries figures but not the named one — the case where the
// figure name is simply unknown and a pipeline run would not help.
func (c *studyCache) MissingStoredFigure(seed int64, key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[seed]
	if !ok {
		return false
	}
	e := el.Value.(*cacheEntry)
	if !e.fromStore || e.study != nil {
		return false
	}
	if _, ok := e.artifacts[key]; ok {
		return false
	}
	for k := range e.artifacts {
		if strings.HasPrefix(k, "figures/") {
			return true
		}
	}
	return false
}

// Len reports the current number of cached entries.
func (c *studyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Seeds returns the cached seeds from most to least recently used.
func (c *studyCache) Seeds() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).seed)
	}
	return out
}

package serve

import (
	"container/list"
	"sync"

	"github.com/schemaevo/schemaevo/internal/study"
)

// studyCache is a bounded LRU of completed studies keyed by seed. Studies
// are immutable once built (every Run* driver only reads), so a single
// cached *study.Study can back any number of concurrent renders; the cache
// itself is guarded by one mutex — the critical sections are pointer moves,
// never pipeline work.
type studyCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[int64]*list.Element  // seed → element whose Value is *cacheEntry
	metrics *Metrics
}

type cacheEntry struct {
	seed  int64
	study *study.Study
}

// newStudyCache returns an LRU holding at most capacity studies. Capacity
// is clamped to at least 1.
func newStudyCache(capacity int, m *Metrics) *studyCache {
	if capacity < 1 {
		capacity = 1
	}
	return &studyCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[int64]*list.Element{},
		metrics: m,
	}
}

// Get returns the cached study for seed, refreshing its recency.
func (c *studyCache) Get(seed int64) (*study.Study, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[seed]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).study, true
}

// Put inserts (or refreshes) a study, evicting the least recently used
// entry beyond capacity.
func (c *studyCache) Put(seed int64, s *study.Study) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[seed]; ok {
		el.Value.(*cacheEntry).study = s
		c.order.MoveToFront(el)
		return
	}
	c.entries[seed] = c.order.PushFront(&cacheEntry{seed: seed, study: s})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).seed)
		if c.metrics != nil {
			c.metrics.cacheEvicts.Add(1)
		}
	}
	if c.metrics != nil {
		c.metrics.cacheEntries.Store(int64(c.order.Len()))
	}
}

// Len reports the current number of cached studies.
func (c *studyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Seeds returns the cached seeds from most to least recently used.
func (c *studyCache) Seeds() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).seed)
	}
	return out
}

package serve

import "sync"

// flightGroup deduplicates concurrent pipeline runs per seed: the first
// caller executes fn, every caller that arrives while the run is in flight
// blocks on the same result. Unlike golang.org/x/sync/singleflight this is
// specialised to int64 keys and study results, so no interface boxing and
// no extra dependency.
type flightGroup struct {
	mu      sync.Mutex
	flights map[int64]*flight
}

type flight struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[int64]*flight{}}
}

// Do executes fn for key, collapsing concurrent calls onto one execution.
// shared reports whether this caller joined an already in-flight run.
func (g *flightGroup) Do(key int64, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}

// Inflight reports whether a run for key is currently executing — the probe
// the orphaned-run counter uses when a waiter times out.
func (g *flightGroup) Inflight(key int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.flights[key]
	return ok
}

// Wait returns a channel that closes when the currently in-flight run for
// key settles (its result already published to the caches), or nil when no
// run is in flight. Unlike Do it never starts a run — the probe the
// history-events stream uses to join an ingest without being able to
// trigger one.
func (g *flightGroup) Wait(key int64) <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f.done
	}
	return nil
}

// DoChan is the non-blocking variant: the result is delivered on the
// returned channel, letting the caller race it against a context deadline
// while the run keeps going (and still populates the cache) after the
// caller gives up.
func (g *flightGroup) DoChan(key int64, fn func() (any, error)) <-chan flightResult {
	ch := make(chan flightResult, 1)
	go func() {
		val, err, shared := g.Do(key, fn)
		ch <- flightResult{Val: val, Err: err, Shared: shared}
	}()
	return ch
}

// flightResult is one Do outcome delivered through DoChan.
type flightResult struct {
	Val    any
	Err    error
	Shared bool
}

package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
)

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.requests.Add(7)
	m.cacheHits.Add(5)
	m.cacheMisses.Add(2)
	m.ObserveLatency("fig4", 40*time.Microsecond)
	m.ObserveLatency("fig4", 3*time.Second)
	m.ObserveLatency("export.csv", time.Millisecond)

	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"schemaevod_requests_total 7",
		"schemaevod_cache_hits_total 5",
		"schemaevod_cache_misses_total 2",
		"# TYPE schemaevod_requests_total counter",
		"# TYPE schemaevod_inflight_requests gauge",
		"# TYPE schemaevod_experiment_latency_seconds histogram",
		`schemaevod_experiment_latency_seconds_count{experiment="fig4"} 2`,
		`schemaevod_experiment_latency_seconds_bucket{experiment="fig4",le="+Inf"} 2`,
		`schemaevod_experiment_latency_seconds_count{experiment="export.csv"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestMetricsStageFamilies: the exposition merges the obs stage registry —
// per-stage pipeline histograms appear alongside the daemon counters, with
// every line in parseable Prometheus text format (a private registry keeps
// the test isolated from other packages' observations).
func TestMetricsStageFamilies(t *testing.T) {
	reg := obs.NewStageRegistry()
	m := newMetricsWithStages(reg)
	reg.Observe("corpus.generate", 3*time.Millisecond)
	reg.Observe("corpus.generate", 40*time.Millisecond)
	reg.Observe("history.analyze", 700*time.Microsecond)

	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE schemaevo_stage_duration_seconds histogram",
		"# TYPE schemaevo_stage_runs_total counter",
		`schemaevo_stage_duration_seconds_count{stage="corpus.generate"} 2`,
		`schemaevo_stage_duration_seconds_count{stage="history.analyze"} 1`,
		`schemaevo_stage_duration_seconds_bucket{stage="corpus.generate",le="+Inf"} 2`,
		`schemaevo_stage_runs_total{stage="corpus.generate"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Each exposition line must be "# ..." or "name{labels} value" — a
	// scraper-level sanity parse of the merged output.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// An empty stage registry must add nothing — the seed exposition stays
// byte-identical when no pipeline has run.
func TestMetricsStageFamiliesEmpty(t *testing.T) {
	m := newMetricsWithStages(obs.NewStageRegistry())
	var b strings.Builder
	m.WriteTo(&b)
	if strings.Contains(b.String(), "schemaevo_stage") {
		t.Fatalf("empty registry leaked stage lines:\n%s", b.String())
	}
}

// Histogram buckets must be cumulative: a 40µs observation counts in every
// bucket from 100µs up.
func TestHistogramCumulative(t *testing.T) {
	m := NewMetrics()
	m.ObserveLatency("x", 40*time.Microsecond)
	m.ObserveLatency("x", 4*time.Second)
	var b strings.Builder
	m.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`le="0.0001"} 1`, // 40µs lands here
		`le="1"} 1`,      // 4s not yet
		`le="5"} 2`,      // both
		`le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing cumulative bucket %q\n%s", want, out)
		}
	}
}

// Quantile estimates must never exceed the largest observation — in
// particular at the histogram edges, where naive interpolation against a
// bucket's upper bound (or the +Inf bucket) invents latencies nobody saw.
func TestHistogramQuantileClampsToMax(t *testing.T) {
	h := &histogram{}
	// 100 observations of 31s: every one lands in the +Inf bucket (last
	// bound is 30s). Both p50 and p99 must report 31s, not a bucket bound.
	for i := 0; i < 100; i++ {
		h.observe(31 * time.Second)
	}
	for _, q := range []float64{0.5, 0.99} {
		if got := h.quantile(q); got != 31.0 {
			t.Errorf("q%.2f = %gs with all observations in +Inf, want 31", q, got)
		}
	}
}

func TestHistogramQuantileInterpolationClamped(t *testing.T) {
	h := &histogram{}
	// 99 fast observations and one at 600ms: the p99 rank lands in the
	// (0.5, 1] bucket, where plain interpolation would report up to ~1s.
	// The clamp caps it at the 600ms actually observed.
	for i := 0; i < 99; i++ {
		h.observe(50 * time.Microsecond)
	}
	h.observe(600 * time.Millisecond)
	p99 := h.quantile(0.99)
	if p99 > 0.6 {
		t.Errorf("p99 = %gs exceeds max observation 0.6s", p99)
	}
	if p99 <= 0 {
		t.Errorf("p99 = %gs, want positive", p99)
	}
	// p50 stays inside the fast bucket, untouched by the clamp.
	if p50 := h.quantile(0.5); p50 > 0.0001 {
		t.Errorf("p50 = %gs, want within the 100µs bucket", p50)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := &histogram{}
	if got := h.quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %g, want 0", got)
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.ObserveLatency("k", time.Duration(i)*time.Microsecond)
				m.requests.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Snapshot().Requests; got != 4000 {
		t.Fatalf("requests = %d, want 4000", got)
	}
	var b strings.Builder
	m.WriteTo(&b)
	if !strings.Contains(b.String(), `schemaevod_experiment_latency_seconds_count{experiment="k"} 4000`) {
		t.Fatalf("histogram lost observations:\n%s", b.String())
	}
}

package serve

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.requests.Add(7)
	m.cacheHits.Add(5)
	m.cacheMisses.Add(2)
	m.ObserveLatency("fig4", 40*time.Microsecond)
	m.ObserveLatency("fig4", 3*time.Second)
	m.ObserveLatency("export.csv", time.Millisecond)

	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"schemaevod_requests_total 7",
		"schemaevod_cache_hits_total 5",
		"schemaevod_cache_misses_total 2",
		"# TYPE schemaevod_requests_total counter",
		"# TYPE schemaevod_inflight_requests gauge",
		"# TYPE schemaevod_experiment_latency_seconds histogram",
		`schemaevod_experiment_latency_seconds_count{experiment="fig4"} 2`,
		`schemaevod_experiment_latency_seconds_bucket{experiment="fig4",le="+Inf"} 2`,
		`schemaevod_experiment_latency_seconds_count{experiment="export.csv"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// Histogram buckets must be cumulative: a 40µs observation counts in every
// bucket from 100µs up.
func TestHistogramCumulative(t *testing.T) {
	m := NewMetrics()
	m.ObserveLatency("x", 40*time.Microsecond)
	m.ObserveLatency("x", 4*time.Second)
	var b strings.Builder
	m.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`le="0.0001"} 1`, // 40µs lands here
		`le="1"} 1`,      // 4s not yet
		`le="5"} 2`,      // both
		`le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing cumulative bucket %q\n%s", want, out)
		}
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.ObserveLatency("k", time.Duration(i)*time.Microsecond)
				m.requests.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Snapshot().Requests; got != 4000 {
		t.Fatalf("requests = %d, want 4000", got)
	}
	var b strings.Builder
	m.WriteTo(&b)
	if !strings.Contains(b.String(), `schemaevod_experiment_latency_seconds_count{experiment="k"} 4000`) {
		t.Fatalf("histogram lost observations:\n%s", b.String())
	}
}

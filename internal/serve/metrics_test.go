package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/schemaevo/schemaevo/internal/obs"
)

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.requests.Add(7)
	m.cacheHits.Add(5)
	m.cacheMisses.Add(2)
	m.ObserveLatency("fig4", 40*time.Microsecond)
	m.ObserveLatency("fig4", 3*time.Second)
	m.ObserveLatency("export.csv", time.Millisecond)

	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"schemaevod_requests_total 7",
		"schemaevod_cache_hits_total 5",
		"schemaevod_cache_misses_total 2",
		"# TYPE schemaevod_requests_total counter",
		"# TYPE schemaevod_inflight_requests gauge",
		"# TYPE schemaevod_experiment_latency_seconds histogram",
		`schemaevod_experiment_latency_seconds_count{experiment="fig4"} 2`,
		`schemaevod_experiment_latency_seconds_bucket{experiment="fig4",le="+Inf"} 2`,
		`schemaevod_experiment_latency_seconds_count{experiment="export.csv"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestMetricsStageFamilies: the exposition merges the obs stage registry —
// per-stage pipeline histograms appear alongside the daemon counters, with
// every line in parseable Prometheus text format (a private registry keeps
// the test isolated from other packages' observations).
func TestMetricsStageFamilies(t *testing.T) {
	reg := obs.NewStageRegistry()
	m := newMetricsWithStages(reg)
	reg.Observe("corpus.generate", 3*time.Millisecond)
	reg.Observe("corpus.generate", 40*time.Millisecond)
	reg.Observe("history.analyze", 700*time.Microsecond)

	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE schemaevo_stage_duration_seconds histogram",
		"# TYPE schemaevo_stage_runs_total counter",
		`schemaevo_stage_duration_seconds_count{stage="corpus.generate"} 2`,
		`schemaevo_stage_duration_seconds_count{stage="history.analyze"} 1`,
		`schemaevo_stage_duration_seconds_bucket{stage="corpus.generate",le="+Inf"} 2`,
		`schemaevo_stage_runs_total{stage="corpus.generate"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Each exposition line must be "# ..." or "name{labels} value" — a
	// scraper-level sanity parse of the merged output.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// An empty stage registry must add nothing — the seed exposition stays
// byte-identical when no pipeline has run.
func TestMetricsStageFamiliesEmpty(t *testing.T) {
	m := newMetricsWithStages(obs.NewStageRegistry())
	var b strings.Builder
	m.WriteTo(&b)
	if strings.Contains(b.String(), "schemaevo_stage") {
		t.Fatalf("empty registry leaked stage lines:\n%s", b.String())
	}
}

// Histogram buckets must be cumulative: a 40µs observation counts in every
// bucket from 100µs up.
func TestHistogramCumulative(t *testing.T) {
	m := NewMetrics()
	m.ObserveLatency("x", 40*time.Microsecond)
	m.ObserveLatency("x", 4*time.Second)
	var b strings.Builder
	m.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`le="0.0001"} 1`, // 40µs lands here
		`le="1"} 1`,      // 4s not yet
		`le="5"} 2`,      // both
		`le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing cumulative bucket %q\n%s", want, out)
		}
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.ObserveLatency("k", time.Duration(i)*time.Microsecond)
				m.requests.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Snapshot().Requests; got != 4000 {
		t.Fatalf("requests = %d, want 4000", got)
	}
	var b strings.Builder
	m.WriteTo(&b)
	if !strings.Contains(b.String(), `schemaevod_experiment_latency_seconds_count{experiment="k"} 4000`) {
		t.Fatalf("histogram lost observations:\n%s", b.String())
	}
}

package schemaevo_test

import (
	"fmt"
	"time"

	schemaevo "github.com/schemaevo/schemaevo"
)

// ExampleDiff shows the paper's change categories on a single transition.
func ExampleDiff() {
	old := schemaevo.ParseSQL(`
CREATE TABLE users (id INT, name VARCHAR(50), PRIMARY KEY (id));`).Schema
	new := schemaevo.ParseSQL(`
CREATE TABLE users (id BIGINT, name VARCHAR(50), PRIMARY KEY (id));
CREATE TABLE posts (id INT, author INT);`).Schema

	d := schemaevo.Diff(old, new)
	fmt.Println("born:", d.Born)
	fmt.Println("type changes:", d.TypeChange)
	fmt.Println("expansion:", d.Expansion(), "maintenance:", d.Maintenance())
	fmt.Println("active:", d.IsActive())
	// Output:
	// born: 2
	// type changes: 1
	// expansion: 2 maintenance: 1
	// active: true
}

// ExampleClassify walks a full history through measurement into a taxon.
func ExampleClassify() {
	h := &schemaevo.History{Project: "demo", Path: "schema.sql"}
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	versions := []string{
		"CREATE TABLE t (a INT);",
		"CREATE TABLE t (a INT, b INT);",
		"CREATE TABLE t (a INT, b INT); -- docs only",
		"CREATE TABLE t (a TEXT, b INT);",
	}
	for i, sql := range versions {
		h.Versions = append(h.Versions, schemaevo.Version{
			ID: i, When: base.AddDate(0, i, 0), SQL: sql,
		})
	}
	analysis, _ := schemaevo.Analyze(h)
	m := schemaevo.Measure(analysis)
	fmt.Println("active commits:", m.ActiveCommits)
	fmt.Println("activity:", m.TotalActivity)
	fmt.Println("taxon:", schemaevo.Classify(m))
	// Output:
	// active commits: 2
	// activity: 2
	// taxon: Almost Frozen
}

// ExampleDeriveSMOs turns a transition into a replayable migration.
func ExampleDeriveSMOs() {
	old := schemaevo.ParseSQL("CREATE TABLE t (a INT);").Schema
	new := schemaevo.ParseSQL("CREATE TABLE t (a INT, b TEXT);").Schema
	ops := schemaevo.DeriveSMOs(old, new)
	for _, op := range ops {
		fmt.Println(op.SQL())
	}
	replayed := old.Clone()
	schemaevo.ApplySMOs(replayed, ops)
	fmt.Println("replay equal:", schemaevo.SchemasEqual(replayed, new))
	// Output:
	// ALTER TABLE `t` ADD COLUMN `b` TEXT;
	// replay equal: true
}

// ExampleKruskalWallis reproduces the paper's style of taxa validation.
func ExampleKruskalWallis() {
	almostFrozen := []float64{1, 2, 3, 3, 4}
	active := []float64{112, 254, 300, 512}
	res, _ := schemaevo.KruskalWallis(almostFrozen, active)
	fmt.Printf("df=%d significant=%v\n", res.DF, res.P < 0.05)
	// Output:
	// df=1 significant=true
}

// ExampleDeriveReedLimit reproduces the §III.B threshold derivation.
func ExampleDeriveReedLimit() {
	var corpus []schemaevo.Measures
	// Twenty single-active-commit projects with a power-law-ish activity tail.
	for _, act := range []int{1, 1, 1, 2, 2, 2, 3, 3, 4, 4, 5, 6, 7, 8, 9, 11, 13, 14, 40, 120} {
		corpus = append(corpus, schemaevo.Measures{
			Commits: 2, ActiveCommits: 1, TotalActivity: act,
		})
	}
	fmt.Println("derived limit:", schemaevo.DeriveReedLimit(corpus))
	// Output:
	// derived limit: 13
}

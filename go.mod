module github.com/schemaevo/schemaevo

go 1.22

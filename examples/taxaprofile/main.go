// Example taxaprofile: generate a small synthetic corpus, measure every
// project through the full pipeline, classify into taxa, and print a
// per-taxon activity profile — a miniature of the paper's Fig. 4.
//
// Run with: go run ./examples/taxaprofile
package main

import (
	"fmt"
	"log"

	schemaevo "github.com/schemaevo/schemaevo"
)

func main() {
	projects := schemaevo.GenerateCorpus(schemaevo.CorpusConfig{Seed: 2024})
	fmt.Printf("generated %d projects\n\n", len(projects))

	var measures []schemaevo.Measures
	for _, p := range projects {
		if len(p.Hist.Versions) <= 1 {
			continue // history-less: nothing to measure
		}
		analysis, err := schemaevo.Analyze(p.Hist)
		if err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		measures = append(measures, schemaevo.Measure(analysis))
	}

	fmt.Printf("%-22s %6s %9s %9s %7s %7s\n",
		"taxon", "count", "medAct", "medActv", "medReed", "medSUP")
	for _, taxon := range schemaevo.Taxa() {
		group := schemaevo.ByTaxon(measures)[taxon]
		if len(group) == 0 {
			continue
		}
		fmt.Printf("%-22v %6d %9.1f %9.1f %7.1f %7.1f\n",
			taxon, len(group),
			medianOf(group, func(m schemaevo.Measures) float64 { return float64(m.TotalActivity) }),
			medianOf(group, func(m schemaevo.Measures) float64 { return float64(m.ActiveCommits) }),
			medianOf(group, func(m schemaevo.Measures) float64 { return float64(m.Reeds) }),
			medianOf(group, func(m schemaevo.Measures) float64 { return float64(m.SUPMonths) }),
		)
	}

	limit := schemaevo.DeriveReedLimit(measures)
	fmt.Printf("\nreed limit re-derived from this corpus: %d (paper's constant: %d)\n",
		limit, schemaevo.DefaultReedLimit)
}

// medianOf is a tiny helper so the example stays dependency-free.
func medianOf(ms []schemaevo.Measures, get func(schemaevo.Measures) float64) float64 {
	vals := make([]float64, len(ms))
	for i, m := range ms {
		vals[i] = get(m)
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Example migrate: derive a Schema Modification Operator sequence between
// two schema versions and emit it as an executable migration script — the
// algebraic view of a transition (related work [3]–[5] of the paper). The
// example also replays the script through the SQL parser to prove the
// migration reproduces the target schema.
//
// Run with: go run ./examples/migrate
package main

import (
	"fmt"

	schemaevo "github.com/schemaevo/schemaevo"
)

const before = `
CREATE TABLE accounts (
  id INT(11) NOT NULL,
  login VARCHAR(32) NOT NULL,
  passwd CHAR(40),
  PRIMARY KEY (id)
);
CREATE TABLE audit (
  id INT(11) NOT NULL,
  msg TEXT
);
`

const after = `
CREATE TABLE accounts (
  id BIGINT(20) NOT NULL,
  login VARCHAR(64) NOT NULL,
  password_hash CHAR(60),
  created_at DATETIME,
  PRIMARY KEY (id)
);
CREATE TABLE api_tokens (
  token CHAR(36) NOT NULL,
  account_id BIGINT(20),
  PRIMARY KEY (token),
  CONSTRAINT fk_tok FOREIGN KEY (account_id) REFERENCES accounts (id) ON DELETE CASCADE
);
`

func main() {
	old := schemaevo.ParseSQL(before).Schema
	new := schemaevo.ParseSQL(after).Schema

	ops := schemaevo.DeriveSMOs(old, new)
	fmt.Printf("derived %d schema modification operators:\n\n", len(ops))
	script := schemaevo.RenderMigration(ops)
	fmt.Println(script)

	// Prove the migration: replay the script through the SQL parser on top
	// of the old DDL and compare against the target.
	replayed := schemaevo.ParseSQL(before + "\n" + script)
	if len(replayed.Errors) > 0 {
		fmt.Println("replay errors:", replayed.Errors)
		return
	}
	fmt.Println("replay through parser reproduces target schema:",
		schemaevo.SchemasEqual(replayed.Schema, new))

	// The same transition through the paper's measurement lens.
	delta := schemaevo.Diff(old, new)
	fmt.Printf("measured as: expansion=%d maintenance=%d activity=%d (fk +%d/-%d)\n",
		delta.Expansion(), delta.Maintenance(), delta.Activity(), delta.FKAdded, delta.FKRemoved)
}

// Example quickstart: parse two versions of a DDL file, diff them at the
// logical level, and read the paper's change categories off the delta.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	schemaevo "github.com/schemaevo/schemaevo"
)

const v1 = `
-- web shop, first cut
CREATE TABLE users (
  id INT(11) NOT NULL AUTO_INCREMENT,
  email VARCHAR(100) NOT NULL,
  name VARCHAR(50),
  PRIMARY KEY (id)
) ENGINE=InnoDB;

CREATE TABLE carts (
  id INT(11) NOT NULL,
  user_id INT(11),
  created DATETIME,
  PRIMARY KEY (id)
);
`

const v2 = `
-- web shop, after the payments sprint
CREATE TABLE users (
  id INT(11) NOT NULL AUTO_INCREMENT,
  email VARCHAR(255) NOT NULL,          -- widened
  display_name VARCHAR(50),             -- renamed: reads as eject+inject
  PRIMARY KEY (id)
);

CREATE TABLE orders (                    -- carts became orders
  id INT(11) NOT NULL,
  user_id INT(11),
  total DECIMAL(10,2),
  placed_at DATETIME,
  PRIMARY KEY (id)
);
`

func main() {
	oldRes := schemaevo.ParseSQL(v1)
	newRes := schemaevo.ParseSQL(v2)
	fmt.Printf("v1: %d tables, %d attributes\n", oldRes.Schema.NumTables(), oldRes.Schema.NumColumns())
	fmt.Printf("v2: %d tables, %d attributes\n\n", newRes.Schema.NumTables(), newRes.Schema.NumColumns())

	delta := schemaevo.Diff(oldRes.Schema, newRes.Schema)
	fmt.Println("transition v1 → v2:")
	fmt.Printf("  tables inserted: %v\n", delta.TablesInserted)
	fmt.Printf("  tables deleted:  %v\n", delta.TablesDeleted)
	fmt.Printf("  born=%d injected=%d deleted=%d ejected=%d type=%d pk=%d\n",
		delta.Born, delta.Injected, delta.Deleted, delta.Ejected, delta.TypeChange, delta.PKChange)
	fmt.Printf("  expansion=%d maintenance=%d activity=%d active=%v\n\n",
		delta.Expansion(), delta.Maintenance(), delta.Activity(), delta.IsActive())

	fmt.Println("attribute-level events:")
	for _, c := range delta.Changes {
		if c.Old != "" || c.New != "" {
			fmt.Printf("  %-12s %s.%s  %s → %s\n", c.Kind, c.Table, c.Column, c.Old, c.New)
		} else {
			fmt.Printf("  %-12s %s.%s\n", c.Kind, c.Table, c.Column)
		}
	}
}

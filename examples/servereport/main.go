// Example servereport: run the full reproduction and serve its
// self-contained HTML report (tables + inline SVG figures) plus the raw
// dataset over HTTP — the shape of a small internal research dashboard.
//
// Run with: go run ./examples/servereport [-addr :8080] [-seed 1] [-once]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"

	schemaevo "github.com/schemaevo/schemaevo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 1, "corpus seed")
	once := flag.Bool("once", false, "render once and exit (smoke-test mode)")
	flag.Parse()

	log.Printf("running study at seed %d ...", *seed)
	st, err := schemaevo.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	html, err := st.HTMLReport(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	csv := st.ExportCSV()
	js, err := st.ExportJSON()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("report ready: %d bytes HTML, %d projects in dataset", len(html), len(st.Measures))

	if *once {
		fmt.Printf("rendered report (%d bytes); dataset %d bytes; summary %d bytes\n",
			len(html), len(csv), len(js))
		return
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, html)
	})
	mux.HandleFunc("/dataset.csv", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprint(w, csv)
	})
	mux.HandleFunc("/summary.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, js)
	})
	log.Printf("serving on http://%s (report at /, /dataset.csv, /summary.json)", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// Example minerepo: the end-to-end mining pipeline on a real repository
// layout. It builds a small project repository commit by commit (README
// churn interleaved with schema work, exactly like a real FOSS project),
// then mines it back: extract the DDL history from the git objects, analyze
// the transitions, measure the heartbeat, and classify the project.
//
// Run with: go run ./examples/minerepo
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	schemaevo "github.com/schemaevo/schemaevo"
)

func main() {
	dir, err := os.MkdirTemp("", "minerepo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	repo, err := schemaevo.InitRepo(dir)
	if err != nil {
		log.Fatal(err)
	}
	w := schemaevo.NewWorktree(repo, "master")
	at := func(day int) schemaevo.Signature {
		return schemaevo.Signature{
			Name: "dev", Email: "dev@example.org",
			When: time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, day),
		}
	}

	commit := func(day int, msg string, files map[string]string) {
		for path, content := range files {
			w.Set(path, []byte(content))
		}
		if _, err := w.Commit(msg, at(day)); err != nil {
			log.Fatal(err)
		}
	}

	// A year in the life of a small project.
	commit(0, "initial import", map[string]string{
		"README.md": "# tasks\n",
		"db/schema.sql": `CREATE TABLE tasks (
  id INT NOT NULL AUTO_INCREMENT,
  title VARCHAR(100) NOT NULL,
  done TINYINT(1) DEFAULT 0,
  PRIMARY KEY (id)
);`,
	})
	commit(14, "docs: add install notes", map[string]string{"README.md": "# tasks\n\ninstall...\n"})
	commit(40, "schema: track owners", map[string]string{
		"db/schema.sql": `CREATE TABLE tasks (
  id INT NOT NULL AUTO_INCREMENT,
  title VARCHAR(100) NOT NULL,
  done TINYINT(1) DEFAULT 0,
  owner_id INT,
  PRIMARY KEY (id)
);
CREATE TABLE owners (
  id INT NOT NULL,
  name VARCHAR(50),
  PRIMARY KEY (id)
);`,
	})
	commit(90, "fix typo in readme", map[string]string{"README.md": "# Tasks\n\ninstall...\n"})
	commit(200, "schema: widen title, drop done flag for status enum", map[string]string{
		"db/schema.sql": `CREATE TABLE tasks (
  id INT NOT NULL AUTO_INCREMENT,
  title VARCHAR(255) NOT NULL,
  status ENUM('open','done','blocked') DEFAULT 'open',
  owner_id INT,
  PRIMARY KEY (id)
);
CREATE TABLE owners (
  id INT NOT NULL,
  name VARCHAR(50),
  PRIMARY KEY (id)
);`,
	})

	// Mine it back, exactly as the study mined GitHub clones.
	hist, err := schemaevo.HistoryFromRepo(repo, "tasks", "db/schema.sql")
	if err != nil {
		log.Fatal(err)
	}
	hist.Filter()
	fmt.Printf("mined %d schema versions out of %d project commits\n",
		len(hist.Versions), hist.ProjectCommits)

	analysis, err := schemaevo.Analyze(hist)
	if err != nil {
		log.Fatal(err)
	}
	m := schemaevo.Measure(analysis)
	fmt.Printf("taxon: %v\n", schemaevo.Classify(m))
	fmt.Printf("activity: %d (expansion %d, maintenance %d) over %d active commits\n",
		m.TotalActivity, m.Expansion, m.Maintenance, m.ActiveCommits)
	for _, b := range m.Heartbeat {
		fmt.Printf("  transition %d (%s): +%d / -%d\n",
			b.TransitionID, b.When.Format("2006-01-02"), b.Expansion, b.Maintenance)
	}
}

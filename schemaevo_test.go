package schemaevo

import (
	"context"
	"strings"
	"testing"
	"time"
)

// These tests exercise the public facade exactly as a downstream user would:
// parse → diff → mine → measure → classify → study.

func TestFacadeParseAndDiff(t *testing.T) {
	old := ParseSQL("CREATE TABLE t (a INT, b VARCHAR(10), PRIMARY KEY (a));")
	if len(old.Errors) != 0 || !old.HasCreateTable() {
		t.Fatalf("parse: %+v", old)
	}
	new := ParseSQL("CREATE TABLE t (a BIGINT, c TEXT, PRIMARY KEY (a));")
	d := Diff(old.Schema, new.Schema)
	if d.TypeChange != 1 || d.Injected != 1 || d.Ejected != 1 {
		t.Fatalf("delta: %+v", d)
	}
	if d.Activity() != 3 || !d.IsActive() {
		t.Fatalf("activity = %d", d.Activity())
	}
}

func TestFacadeEndToEndMining(t *testing.T) {
	repo, err := InitRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorktree(repo, "master")
	sig := func(day int) Signature {
		return Signature{Name: "d", Email: "d@e",
			When: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, day)}
	}
	w.Set("schema.sql", []byte("CREATE TABLE a (x INT);"))
	if _, err := w.Commit("v0", sig(0)); err != nil {
		t.Fatal(err)
	}
	w.Set("schema.sql", []byte("CREATE TABLE a (x INT, y INT); CREATE TABLE b (z INT);"))
	if _, err := w.Commit("v1", sig(40)); err != nil {
		t.Fatal(err)
	}

	hist, err := HistoryFromRepo(repo, "p", "schema.sql")
	if err != nil {
		t.Fatal(err)
	}
	hist.Filter()
	a, err := Analyze(hist)
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(a)
	if m.TotalActivity != 2 || m.ActiveCommits != 1 {
		t.Fatalf("measures: %+v", m)
	}
	if Classify(m) != AlmostFrozen {
		t.Fatalf("taxon = %v", Classify(m))
	}
}

func TestFacadeCorpusAndClassification(t *testing.T) {
	projects := GenerateCorpus(CorpusConfig{
		Seed:   7,
		Counts: map[Taxon]int{Moderate: 3, Active: 2},
	})
	if len(projects) != 5 {
		t.Fatalf("projects = %d", len(projects))
	}
	var ms []Measures
	for _, p := range projects {
		a, err := Analyze(p.Hist)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, Measure(a))
	}
	groups := ByTaxon(ms)
	if len(groups[Moderate]) != 3 || len(groups[Active]) != 2 {
		t.Fatalf("groups: mod=%d act=%d", len(groups[Moderate]), len(groups[Active]))
	}
}

func TestFacadeStats(t *testing.T) {
	kw, err := KruskalWallis([]float64{1, 2, 3}, []float64{4, 5, 6}, []float64{7, 8, 9})
	if err != nil || kw.DF != 2 {
		t.Fatalf("kw: %+v err %v", kw, err)
	}
	sw, err := ShapiroWilk([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil || sw.W < 0.9 {
		t.Fatalf("sw: %+v err %v", sw, err)
	}
}

func TestFacadeTaxaHelpers(t *testing.T) {
	taxa := Taxa()
	if len(taxa) != 6 || taxa[0] != Frozen || taxa[5] != Active {
		t.Fatalf("Taxa() = %v", taxa)
	}
	if DefaultReedLimit != 14 {
		t.Fatalf("DefaultReedLimit = %d", DefaultReedLimit)
	}
}

func TestFacadeStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full study is expensive")
	}
	st, err := NewStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Measures) != 195 {
		t.Fatalf("study set = %d", len(st.Measures))
	}
	out := strings.Join(st.Everything(context.Background()), "\n")
	if !strings.Contains(out, "E05") || !strings.Contains(out, "Kruskal") {
		t.Error("study output incomplete")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	keys := StudyExperimentKeys()
	exps := StudyExperiments()
	if len(keys) == 0 || len(keys) != len(exps) {
		t.Fatalf("%d keys, %d experiments", len(keys), len(exps))
	}
	for i, e := range exps {
		if e.Key != keys[i] || e.Run == nil {
			t.Fatalf("registry entry %d inconsistent: %q", i, e.Key)
		}
	}
}

func TestFacadeStudyServer(t *testing.T) {
	// Construction only — endpoint behaviour is covered in internal/serve.
	if NewStudyServer(StudyServerOptions{CacheSize: 1, Timeout: time.Second}) == nil {
		t.Fatal("nil handler")
	}
}

func TestFacadeWriteProjectRepo(t *testing.T) {
	p := GenerateCorpus(CorpusConfig{Seed: 3, Counts: map[Taxon]int{AlmostFrozen: 1}})[0]
	repo, err := WriteProjectRepo(p, t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HistoryFromRepo(repo, p.Name, "schema.sql")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Versions) != len(p.Hist.Versions) {
		t.Fatalf("round trip: %d vs %d versions", len(h.Versions), len(p.Hist.Versions))
	}
}

func TestFacadeCorrelation(t *testing.T) {
	res, err := Spearman([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
	if err != nil || res.Rho != 1 {
		t.Fatalf("Spearman: %+v err %v", res, err)
	}
	if s := Skewness([]float64{1, 1, 1, 10}); s <= 0 {
		t.Errorf("Skewness = %v, want positive", s)
	}
}

func TestFacadeSMOs(t *testing.T) {
	old := ParseSQL("CREATE TABLE t (a INT);").Schema
	new := ParseSQL("CREATE TABLE t (a INT, b TEXT);").Schema
	ops := DeriveSMOs(old, new)
	if len(ops) != 1 {
		t.Fatalf("ops = %d", len(ops))
	}
	script := RenderMigration(ops)
	if !strings.Contains(script, "ADD COLUMN") {
		t.Errorf("script = %q", script)
	}
	got := old.Clone()
	if err := ApplySMOs(got, ops); err != nil {
		t.Fatal(err)
	}
	if !SchemasEqual(got, new) {
		t.Fatal("replay mismatch through facade")
	}
}

func TestFacadeTableLives(t *testing.T) {
	h := &History{Project: "p", Path: "s.sql"}
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i, sql := range []string{
		"CREATE TABLE a (x INT);",
		"CREATE TABLE a (x INT); CREATE TABLE b (y INT);",
		"CREATE TABLE a (x INT);",
	} {
		h.Versions = append(h.Versions, Version{ID: i, When: base.AddDate(0, i, 0), SQL: sql})
	}
	a, err := Analyze(h)
	if err != nil {
		t.Fatal(err)
	}
	lives := TableLives(a)
	if len(lives) != 2 {
		t.Fatalf("lives = %d", len(lives))
	}
	var e Electrolysis
	for _, l := range lives {
		e.Add(l, len(h.Versions))
	}
	if e.Tables != 2 {
		t.Fatalf("electrolysis tables = %d", e.Tables)
	}
}

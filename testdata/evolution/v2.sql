-- bookstore schema, cosmetic commit: comments and an index only
-- (no logical change: this version must be non-active)
CREATE TABLE books (
  id INT(11) NOT NULL AUTO_INCREMENT,
  title VARCHAR(200) NOT NULL,
  author VARCHAR(100),
  price DECIMAL(8,2),
  PRIMARY KEY (id),
  KEY idx_title (title)
) ENGINE=InnoDB;

CREATE TABLE customers (
  id INT(11) NOT NULL,
  email VARCHAR(100) NOT NULL,
  PRIMARY KEY (id)
);

CREATE TABLE orders (
  id INT(11) NOT NULL,
  customer_id INT(11),
  book_id INT(11),
  placed_at DATETIME,
  PRIMARY KEY (id)
);

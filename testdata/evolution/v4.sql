-- bookstore schema, drop legacy customers table (2 + 1 = 3 attrs deleted),
-- fold identity into orders via email column (1 injected)
CREATE TABLE books (
  id INT(11) NOT NULL AUTO_INCREMENT,
  title VARCHAR(200) NOT NULL,
  isbn CHAR(13),
  stock INT(11) DEFAULT 0,
  price DECIMAL(10,2),
  PRIMARY KEY (id),
  KEY idx_title (title)
) ENGINE=InnoDB;

CREATE TABLE orders (
  id INT(11) NOT NULL,
  customer_email VARCHAR(100),
  customer_id INT(11),
  book_id INT(11),
  qty INT(11) DEFAULT 1,
  placed_at DATETIME,
  PRIMARY KEY (id)
);

-- bookstore schema, the big refactor:
--   books: +isbn +stock (2 injected), price → DECIMAL(10,2) (1 type change),
--          author ejected (1)
--   customers: name injected (1)
--   orders: composite key change: placed_at joins PK? no — qty injected (1)
CREATE TABLE books (
  id INT(11) NOT NULL AUTO_INCREMENT,
  title VARCHAR(200) NOT NULL,
  isbn CHAR(13),
  stock INT(11) DEFAULT 0,
  price DECIMAL(10,2),
  PRIMARY KEY (id),
  KEY idx_title (title)
) ENGINE=InnoDB;

CREATE TABLE customers (
  id INT(11) NOT NULL,
  email VARCHAR(100) NOT NULL,
  name VARCHAR(120),
  PRIMARY KEY (id)
);

CREATE TABLE orders (
  id INT(11) NOT NULL,
  customer_id INT(11),
  book_id INT(11),
  qty INT(11) DEFAULT 1,
  placed_at DATETIME,
  PRIMARY KEY (id)
);

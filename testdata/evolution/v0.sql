-- bookstore schema, initial import
CREATE TABLE books (
  id INT(11) NOT NULL AUTO_INCREMENT,
  title VARCHAR(200) NOT NULL,
  author VARCHAR(100),
  price DECIMAL(8,2),
  PRIMARY KEY (id)
) ENGINE=InnoDB;

CREATE TABLE customers (
  id INT(11) NOT NULL,
  email VARCHAR(100) NOT NULL,
  PRIMARY KEY (id)
);
